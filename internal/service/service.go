// Package service turns the one-shot scenario runner into a resident
// simulation service: the subsystem behind the scda-serve binary. Clients
// POST declarative scenario specs (the internal/scenario wire format,
// strictly parsed and validated); the service queues them by priority,
// executes them over a bounded runner.Pool with per-job replication, and
// serves status, results (JSON or the CLI's byte-identical CSVs) and an
// NDJSON progress stream per job, plus /healthz and Prometheus-text
// /metrics for operators.
//
// The core of the design is the content-addressed result cache: jobs are
// keyed by the canonical spec hash (scenario.Spec.Hash) × replicate count,
// deduplicated through runner.Group singleflight — concurrent identical
// submissions share one computation, later ones are served from memory (or
// the optional disk layer) without recomputation. Because scenario runs are
// deterministic, a cache hit is indistinguishable from a fresh run byte for
// byte, which is what makes caching sound.
//
// Everything is stdlib: net/http for the API, container/heap for the
// queue, crypto/sha256 (via scenario) for the addresses.
package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// Config sizes the service; the zero value is usable.
type Config struct {
	// Workers is the replicate fan-out pool width shared by all running
	// jobs (0 = GOMAXPROCS).
	Workers int
	// JobRunners is the number of jobs executing concurrently (0 = 2).
	JobRunners int
	// CacheDir enables the disk cache layer under that directory
	// (one subdirectory per cache key); "" keeps the cache memory-only.
	CacheDir string
	// DefaultReps is the replicate count when a submission omits ?reps
	// (0 = 1).
	DefaultReps int
	// MaxReps bounds per-job replication (0 = 64).
	MaxReps int
	// JobHistory bounds the job ledger (0 = 4096): once exceeded, the
	// oldest *terminal* jobs are forgotten — their IDs 404 — so a
	// resident service under sustained traffic holds bounded memory.
	// Active jobs are never evicted, and results live on in the
	// content-addressed cache regardless.
	JobHistory int
	// CacheEntries bounds the in-memory result cache (0 = 1024): beyond
	// it, the oldest completed entries are evicted FIFO. An evicted
	// result is recomputed on resubmission — or reloaded from the disk
	// layer when CacheDir is set, which is unbounded by design (disk is
	// cheap, rendered results are small).
	CacheEntries int
}

// Service is the resident simulation service. Create with New, expose
// with Handler, stop with Close.
type Service struct {
	cfg   Config
	pool  *runner.Pool
	queue *jobQueue
	group *runner.Group[string, *artifacts]
	met   metrics

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for the list endpoint
	nextID int

	cacheMu   sync.Mutex
	cacheKeys []string // completed-entry FIFO backing CacheEntries eviction
	cacheSeen map[string]bool

	base       context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

// New starts a service: JobRunners goroutines consuming the queue over a
// Workers-wide replicate pool.
func New(cfg Config) *Service {
	if cfg.JobRunners <= 0 {
		cfg.JobRunners = 2
	}
	if cfg.DefaultReps <= 0 {
		cfg.DefaultReps = 1
	}
	if cfg.MaxReps <= 0 {
		cfg.MaxReps = 64
	}
	if cfg.DefaultReps > cfg.MaxReps {
		// A default above the cap would turn every ?reps-less submission
		// into a client-visible 400 for a server-side misconfiguration.
		cfg.DefaultReps = cfg.MaxReps
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 4096
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	s := &Service{
		cfg:       cfg,
		pool:      runner.New(cfg.Workers),
		queue:     newJobQueue(),
		group:     runner.NewGroup[string, *artifacts](),
		jobs:      make(map[string]*Job),
		cacheSeen: make(map[string]bool),
	}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.JobRunners; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runLoop()
		}()
	}
	return s
}

// Close shuts the service down gracefully: the queue stops accepting,
// still-queued jobs are cancelled, running jobs are cancelled at their
// next replicate boundary, and Close returns once every runner goroutine
// has exited. Idempotent.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		for _, j := range s.queue.Close() {
			s.cancelJob(j)
		}
		s.baseCancel()
		s.wg.Wait()
	})
}

// ErrSweep rejects specs with a sweep block: one job is one run, so sweep
// variants must be expanded client-side and submitted individually (they
// cache independently anyway).
var ErrSweep = errors.New("service: spec has a sweep; expand it and submit each variant as its own job")

// Submit validates and enqueues a scenario for execution with reps
// replicate seeds at the given queue priority, returning the job handle
// immediately. If the result cache already holds this (spec, reps) the job
// is born done — the submit path never recomputes known results.
func (s *Service) Submit(spec *scenario.Spec, reps, priority int) (*Job, error) {
	if spec.Sweep != nil {
		return nil, ErrSweep
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if reps <= 0 {
		reps = s.cfg.DefaultReps
	}
	if reps > s.cfg.MaxReps {
		return nil, fmt.Errorf("service: reps %d exceeds the limit %d", reps, s.cfg.MaxReps)
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s-r%d", hash, reps)

	// Cache probe before publication (and before s.mu — the disk layer
	// does file I/O): memory first, then the disk layer, which seeds the
	// memory cache so restarted or memory-evicted results are served at
	// submit time instead of queueing behind running jobs.
	art, hit := s.group.Peek(key)
	if !hit {
		if dir, ok := s.cacheEntryDir(key); ok {
			if a, ok := loadArtifacts(dir); ok {
				if s.group.Add(key, a) {
					s.recordCacheKey(key)
				}
				// Re-read: whichever value won the install races.
				art, hit = s.group.Peek(key)
			}
		}
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, spec, key, reps, priority)
	if hit {
		// Cache fast path: the job is born done *before* it is published
		// in s.jobs, so no DELETE can race its accounting.
		s.met.cacheHits.Add(1)
		s.met.doneOK.Add(1)
		j.complete(art, true)
	} else {
		// Counted while still unpublished for the same reason: a cancel
		// arriving right after publication must find the gauge already
		// incremented before it decrements.
		s.met.jobsQueued.Add(1)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()

	if hit {
		return j, nil
	}
	if !s.queue.Push(j) {
		// Shutdown raced the submit; the job is born cancelled rather
		// than orphaned in a queue nobody will drain.
		s.cancelJob(j)
	}
	return j, nil
}

// cancelJob requests cancellation and, when the job leaves the lifecycle
// straight from the queue (no runner will ever see it), settles the
// accounting: the cancelled-terminal counter and the queue-depth gauge.
// Every cancellation path — DELETE, shutdown, a submit racing Close —
// funnels through here so the two stay consistent.
func (s *Service) cancelJob(j *Job) bool {
	ok, fromQueued := j.requestCancel()
	if ok && fromQueued {
		s.met.doneCancelled.Add(1)
		s.met.jobsQueued.Add(-1)
		// Drop the dead heap entry now: under submit+cancel churn with
		// busy runners it would otherwise pin the job (and its spec)
		// until a runner drained it, defeating the residency bounds.
		s.queue.Remove(j)
	}
	return ok
}

// pruneLocked evicts the oldest terminal jobs while the ledger exceeds
// JobHistory. Caller holds s.mu; active jobs are skipped, so the ledger
// may transiently exceed the bound when everything old is still running.
// The common saturated case — oldest entries already terminal — is O(1)
// per submit: drop from the front by reslicing, no ledger rebuild.
func (s *Service) pruneLocked() {
	over := len(s.order) - s.cfg.JobHistory
	if over <= 0 {
		return
	}
	// The newest entry is the job the current Submit is publishing and is
	// never evicted: a born-done cache hit must not 404 before its client
	// even receives the ID (reachable when everything older is active).
	last := len(s.order) - 1
	front := 0
	for over > 0 && front < last && s.jobs[s.order[front]].terminal() {
		delete(s.jobs, s.order[front])
		front++
		over--
	}
	s.order = s.order[front:]
	if over <= 0 {
		return
	}
	// Rare path: something old is still active. Compact around it, bulk-
	// appending the untouched tail (always including the newest entry)
	// once the excess is gone.
	kept := s.order[:0]
	for i, id := range s.order {
		if over == 0 || i == len(s.order)-1 {
			kept = append(kept, s.order[i:]...)
			break
		}
		if s.jobs[id].terminal() {
			delete(s.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns status snapshots of every job in submission order.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel stops the identified job: immediately if queued, at the next
// replicate boundary if running. The second return reports whether the
// job existed; the first whether cancellation was possible (false once
// terminal).
func (s *Service) Cancel(id string) (cancelled, found bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	return s.cancelJob(j), true
}

// runLoop is one job-runner goroutine: pop, execute, repeat until the
// queue closes.
func (s *Service) runLoop() {
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one popped job through the singleflight cache.
func (s *Service) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.base)
	defer cancel()
	if !j.begin(cancel) {
		return // cancelled while queued; cancelJob already accounted for it
	}
	// The queue-depth gauge tracks jobs in the queued *state*, so the
	// decrement belongs to the state transition, not the heap pop — a
	// cancelled job's dead heap entry must not linger in the gauge.
	s.met.jobsQueued.Add(-1)
	s.met.jobsRunning.Add(1)
	defer s.met.jobsRunning.Add(-1)

	var art *artifacts
	var err error
	computed, diskHit := false, false
	for {
		computed, diskHit = false, false
		art, err = s.group.Do(j.Key, func() (*artifacts, error) {
			computed = true
			if dir, ok := s.cacheEntryDir(j.Key); ok {
				if a, ok := loadArtifacts(dir); ok {
					diskHit = true
					return a, nil
				}
			}
			r, runErr := scenario.RunReplicatedCtx(ctx, j.Spec, j.Reps, s.pool, func(done, total int) {
				j.progress(done)
			})
			if runErr != nil {
				return nil, runErr
			}
			a, renderErr := render(r, j.Reps)
			if renderErr != nil {
				return nil, renderErr
			}
			if dir, ok := s.cacheEntryDir(j.Key); ok {
				// Persistence is best-effort: a failed write degrades the
				// disk layer, never the response.
				_ = a.save(dir)
			}
			return a, nil
		})
		if err != nil && !computed && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// We joined another job's flight and its owner was cancelled;
			// the errored call is forgotten, so run it ourselves.
			continue
		}
		break
	}

	if err == nil && computed {
		// Register the memoized entry with the eviction FIFO regardless of
		// how this job ends (a cancel racing completion still caches the
		// result), or the CacheEntries bound would leak untracked entries.
		s.recordCacheKey(j.Key)
	}
	switch {
	case err == nil && ctx.Err() != nil:
		// The cancel request raced result availability (the last replicate
		// was already simulating, or this job had joined another job's
		// flight, which nothing interrupts). The DELETE was acknowledged,
		// so honor it: the result stays cached for future submissions, but
		// this job reports cancelled, not done.
		s.met.doneCancelled.Add(1)
		j.finishCancelled()
	case err == nil:
		if computed && !diskHit {
			s.met.cacheMisses.Add(1)
		} else {
			s.met.cacheHits.Add(1)
		}
		s.met.doneOK.Add(1)
		j.complete(art, !computed || diskHit)
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		s.met.doneCancelled.Add(1)
		j.finishCancelled()
	default:
		s.met.doneFailed.Add(1)
		j.fail(err.Error())
	}
}

// recordCacheKey notes a freshly completed memory-cache entry and evicts
// the oldest entries beyond the CacheEntries bound, so distinct-spec
// traffic (sweep variants, fuzzed seeds) cannot grow the resident set
// without limit. Keys re-enter the FIFO if recomputed after eviction.
func (s *Service) recordCacheKey(key string) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.cacheSeen[key] {
		return
	}
	s.cacheSeen[key] = true
	s.cacheKeys = append(s.cacheKeys, key)
	for len(s.cacheKeys) > s.cfg.CacheEntries {
		old := s.cacheKeys[0]
		s.cacheKeys = s.cacheKeys[1:]
		delete(s.cacheSeen, old)
		s.group.Forget(old)
	}
}

// cacheEntryDir returns the disk-cache directory for key, ok=false when
// the disk layer is disabled.
func (s *Service) cacheEntryDir(key string) (string, bool) {
	if s.cfg.CacheDir == "" {
		return "", false
	}
	return filepath.Join(s.cfg.CacheDir, key), true
}

// CacheLen reports the number of completed or in-flight cache entries in
// memory.
func (s *Service) CacheLen() int { return s.group.Len() }
