// Package service turns the one-shot scenario runner into a resident
// simulation service: the subsystem behind the scda-serve binary. Clients
// POST declarative scenario specs (the internal/scenario wire format,
// strictly parsed and validated); the service queues them by priority,
// executes them over a bounded runner.Pool with per-job replication, and
// serves status, results (JSON or the CLI's byte-identical CSVs) and an
// NDJSON progress stream per job, plus /healthz and Prometheus-text
// /metrics for operators.
//
// The core of the design is the content-addressed result cache: jobs are
// keyed by the canonical spec hash (scenario.Spec.Hash) × replicate count,
// deduplicated through runner.Group singleflight — concurrent identical
// submissions share one computation, later ones are served from memory (or
// the optional disk layer, bounded by entry-count and byte caps) without
// recomputation. Because scenario runs are deterministic, a cache hit is
// indistinguishable from a fresh run byte for byte, which is what makes
// caching sound.
//
// Sweep specs are first-class through job groups: one POST expands a
// sweep server-side, submits every variant as an ordinary cached child
// job, and aggregates status, events, cancellation and results (the
// concatenated sweep CSV is byte-identical to scda-bench -scenario-dir
// files for the same variants). See JobGroup.
//
// Everything is stdlib: net/http for the API, container/heap for the
// queue, crypto/sha256 (via scenario) for the addresses.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/ring"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Config sizes the service; the zero value is usable.
type Config struct {
	// Workers is the replicate fan-out pool width shared by all running
	// jobs (0 = GOMAXPROCS).
	Workers int
	// JobRunners is the number of jobs executing concurrently (0 = 2).
	JobRunners int
	// CacheDir enables the disk cache layer under that directory
	// (one subdirectory per cache key); "" keeps the cache memory-only.
	CacheDir string
	// DefaultReps is the replicate count when a submission omits ?reps
	// (0 = 1).
	DefaultReps int
	// MaxReps bounds per-job replication (0 = 64).
	MaxReps int
	// JobHistory bounds the job ledger (0 = 4096): once exceeded, the
	// oldest *terminal* jobs are forgotten — their IDs 404 — so a
	// resident service under sustained traffic holds bounded memory.
	// Active jobs are never evicted, and results live on in the
	// content-addressed cache regardless.
	JobHistory int
	// CacheEntries bounds the in-memory result cache (0 = 1024): beyond
	// it, the oldest completed entries are evicted FIFO. An evicted
	// result is recomputed on resubmission — or reloaded from the disk
	// layer when CacheDir is set.
	CacheEntries int
	// CacheMaxEntries bounds the disk cache layer's entry count
	// (0 = 4096, negative = unbounded): beyond it the oldest entries are
	// removed from disk, oldest first. Ignored without CacheDir.
	CacheMaxEntries int
	// CacheMaxBytes bounds the disk cache layer's total size in bytes
	// (0 = 1 GiB, negative = unbounded), enforced with the same
	// oldest-first eviction. Ignored without CacheDir.
	CacheMaxBytes int64
	// GroupHistory bounds the job-group ledger by the *total variant
	// count* retained across groups (0 = 4096), evicting the oldest
	// terminal groups once exceeded (their IDs 404). Counting variants
	// rather than groups is deliberate: a retained group pins its child
	// jobs — rendered artifacts included — beyond the job ledger's own
	// pruning, so a per-group bound would really be a
	// groups × MaxGroupVariants artifact-set bound. Active groups are
	// never evicted.
	GroupHistory int
	// MaxGroupVariants bounds how many variants one group submission may
	// expand to (0 = 256), so a hostile or typo'd sweep cannot enqueue
	// unbounded work in one request.
	MaxGroupVariants int
	// SearchHistory bounds the search ledger (0 = 256): once exceeded,
	// the oldest terminal searches are forgotten — their IDs 404. Active
	// searches are never evicted, and the child jobs a search ran remain
	// subject to the job and group ledger bounds independently.
	SearchHistory int
	// SLO is the target queueing latency for admission control: an HTTP
	// submission predicted to wait longer than this (EWMA job cost ×
	// queue depth at-or-above its priority / runners) is rejected with
	// 429 and a Retry-After. 0 disables load shedding.
	SLO time.Duration
	// MaxJobRuntime bounds any single job's wall time server-side,
	// enforced at replicate boundaries; a job past it fails with a
	// deadline error. 0 = unlimited. Client ?deadline= values tighten
	// but never extend this.
	MaxJobRuntime time.Duration
	// JournalDir enables the write-ahead job journal under that
	// directory: accepted jobs are persisted until they reach a
	// client-driven terminal state, and a restart with the same
	// directory resubmits whatever a crash (or drain) left behind.
	// "" disables journaling.
	JournalDir string
	// HeartbeatInterval is the idle-gap bound on live NDJSON streams:
	// a stream with no event for this long emits a heartbeat line so
	// intermediaries and clients can distinguish a slow job from a dead
	// connection. 0 = 15s; negative disables heartbeats.
	HeartbeatInterval time.Duration
	// Chaos, when non-nil, injects deterministic synthetic faults
	// (handler latency, job panics, disk I/O errors, dropped streams)
	// for robustness testing. Nil — the default — is fully inert.
	Chaos *chaos.Injector

	// Self is this process's own base URL within a fleet (e.g.
	// "http://10.0.0.1:8080"); it must appear in Peers. Setting Self or
	// Peers turns on coordinator mode: submissions route across the
	// fleet by spec hash. Both empty — the default — is single-node.
	Self string
	// Peers is the static fleet: every peer's base URL, Self included.
	// All peers must be started with the same set (order and trailing
	// slashes are normalized away).
	Peers []string
	// ProbeInterval is the background peer health-probe period in
	// coordinator mode (0 = 2s; negative disables the background loop,
	// leaving health to inline reports and explicit ProbePeers calls —
	// the deterministic mode tests use).
	ProbeInterval time.Duration
}

// The service's documented mutex hierarchy, enforced statically by the
// scda-lint lockorder analyzer: Submit completes a cache-hit job while
// holding s.mu (s.mu → j.mu), and a job event fans out to its group while
// j.mu is held (j.mu → g.mu) — so no method may acquire s.mu while holding
// j.mu, or touch a Job or the Service while holding g.mu.
//
//scda:lockorder Service.mu Job.mu JobGroup.mu

// Service is the resident simulation service. Create with New, expose
// with Handler, stop with Close.
type Service struct {
	cfg   Config
	pool  *runner.Pool
	queue *jobQueue
	group *runner.Group[string, *artifacts]
	met   metrics

	disk    *diskCache // nil when CacheDir is unset
	adm     *admission
	journal *journal        // nil when JournalDir is unset
	chaos   *chaos.Injector // nil = no fault injection

	// Coordinator mode (all nil/empty single-node): the placement ring,
	// the peer health prober, the fleet-internal HTTP client, and the
	// "n<idx>-" prefix stamped on job and group IDs so any peer can
	// route any ID back to the peer that minted it.
	ring     *ring.Ring
	prober   *ring.Prober
	ringHTTP *http.Client
	idPrefix string

	draining atomic.Bool // set at Close: journal entries are retained, /readyz is unready

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string // submission order, for the list endpoint
	nextID       int
	groups       map[string]*JobGroup
	groupOrder   []string // group submission order, for the list endpoint
	nextGroupID  int
	searches     map[string]*SearchJob
	searchOrder  []string // search submission order, for the list endpoint
	nextSearchID int

	cacheMu   sync.Mutex
	cacheKeys []string // completed-entry FIFO backing CacheEntries eviction
	cacheSeen map[string]bool

	base       context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

// New starts a service: JobRunners goroutines consuming the queue over a
// Workers-wide replicate pool.
func New(cfg Config) *Service {
	if cfg.JobRunners <= 0 {
		cfg.JobRunners = 2
	}
	if cfg.DefaultReps <= 0 {
		cfg.DefaultReps = 1
	}
	if cfg.MaxReps <= 0 {
		cfg.MaxReps = 64
	}
	if cfg.DefaultReps > cfg.MaxReps {
		// A default above the cap would turn every ?reps-less submission
		// into a client-visible 400 for a server-side misconfiguration.
		cfg.DefaultReps = cfg.MaxReps
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 4096
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.CacheMaxEntries == 0 {
		cfg.CacheMaxEntries = 4096
	}
	if cfg.CacheMaxBytes == 0 {
		cfg.CacheMaxBytes = 1 << 30
	}
	if cfg.GroupHistory <= 0 {
		cfg.GroupHistory = 4096
	}
	if cfg.MaxGroupVariants <= 0 {
		cfg.MaxGroupVariants = 256
	}
	if cfg.SearchHistory <= 0 {
		cfg.SearchHistory = 256
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 15 * time.Second
	}
	s := &Service{
		cfg:       cfg,
		pool:      runner.New(cfg.Workers),
		queue:     newJobQueue(),
		group:     runner.NewGroup[string, *artifacts](),
		adm:       newAdmission(cfg.SLO, cfg.JobRunners),
		chaos:     cfg.Chaos,
		jobs:      make(map[string]*Job),
		groups:    make(map[string]*JobGroup),
		searches:  make(map[string]*SearchJob),
		cacheSeen: make(map[string]bool),
	}
	if cfg.CacheDir != "" {
		s.disk = newDiskCache(cfg.CacheDir, cfg.CacheMaxEntries, cfg.CacheMaxBytes)
	}
	s.setupRing(cfg)
	var recovered []journalEntry
	if cfg.JournalDir != "" {
		// Journal open failure (unwritable directory) degrades to no
		// journaling rather than refusing to serve: availability over
		// durability, matching the disk cache's posture.
		if jl, err := newJournal(cfg.JournalDir); err == nil {
			s.journal = jl
			recovered = jl.load()
			// New IDs must never collide with journaled ones: a recovered
			// entry's file would otherwise be overwritten by the fresh
			// submission's journal write and then deleted by the old
			// entry's cleanup.
			for _, e := range recovered {
				if n, ok := jobSeq(e.ID); ok && n > s.nextID {
					s.nextID = n
				}
			}
		}
	}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.JobRunners; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runLoop()
		}()
	}
	s.recoverJobs(recovered)
	return s
}

// recoverJobs resubmits journaled jobs a previous process accepted but never
// settled — the crash-recovery half of the write-ahead journal. Each entry
// re-enters through the ordinary submit path (fresh ID, fresh journal
// entry, cache probe first — a spec whose result landed in the disk cache
// before the crash is born done without recomputation), after which the
// old entry is removed. Unparseable entries are dropped: better to lose
// one job than to wedge startup on a corrupt file.
func (s *Service) recoverJobs(entries []journalEntry) {
	for _, e := range entries {
		spec, err := parseEntrySpec(e)
		if err == nil {
			_, err = s.submit(spec, e.Reps, e.Priority, e.Deadline, nil)
		}
		if err == nil {
			s.met.jobsRecovered.Add(1)
		}
		s.journal.remove(e.ID)
	}
}

// Close shuts the service down gracefully: the queue stops accepting,
// still-queued jobs are cancelled, running jobs are cancelled at their
// next replicate boundary, and Close returns once every runner goroutine
// has exited. Idempotent.
//
// Draining is not the client abandoning work: the drain flag set here
// makes every cancellation path retain the job's journal entry, so a
// restart with the same JournalDir picks the undrained work back up.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		if s.prober != nil {
			s.prober.Stop()
		}
		for _, j := range s.queue.Close() {
			s.cancelJob(j)
		}
		s.baseCancel()
		s.wg.Wait()
	})
}

// Draining reports whether Close has begun: the service is no longer
// ready for new work (/readyz fails) though in-flight requests still
// complete.
func (s *Service) Draining() bool { return s.draining.Load() }

// Ready reports whether the service should receive traffic: not draining
// and not so far past its latency SLO that new work would be shed anyway.
// This is the /readyz criterion, aimed at load balancers.
func (s *Service) Ready() bool {
	return !s.draining.Load() && !s.adm.overloaded(s.queue.Len())
}

// admitHTTP is the HTTP edge's admission gate for a submission of n jobs
// at the given priority: ok=false means shed (the caller answers 429 with
// retryAfter). Programmatic Submit/SubmitGroup bypass this deliberately —
// shedding is a traffic-edge policy, not a library constraint.
func (s *Service) admitHTTP(priority, n int) (retryAfter time.Duration, ok bool) {
	retryAfter, ok = s.adm.decide(s.queue.DepthAtOrAbove(priority), n)
	if !ok {
		s.met.shedTotal.Add(1)
	}
	return retryAfter, ok
}

// ErrSweep rejects specs with a sweep block on the single-job endpoint:
// one job is one run. Sweeps are first-class on the group endpoint, which
// expands them server-side and aggregates the variants.
var ErrSweep = errors.New("service: spec has a sweep; submit it to /v1/groups to expand and aggregate it server-side")

// Submit validates and enqueues a scenario for execution with reps
// replicate seeds at the given queue priority, returning the job handle
// immediately. If the result cache already holds this (spec, reps) the job
// is born done — the submit path never recomputes known results.
func (s *Service) Submit(spec *scenario.Spec, reps, priority int) (*Job, error) {
	return s.SubmitWithDeadline(spec, reps, priority, time.Time{})
}

// SubmitWithDeadline is Submit with an absolute completion deadline: the
// run is cut off at the next replicate boundary past it and the job fails
// with a deadline error (unless the result was already available — paid-
// for work is always served). A zero deadline means none; the server-side
// MaxJobRuntime cap applies on top either way.
func (s *Service) SubmitWithDeadline(spec *scenario.Spec, reps, priority int, deadline time.Time) (*Job, error) {
	if spec.Sweep != nil {
		return nil, ErrSweep
	}
	if spec.Search != nil {
		return nil, ErrSearch
	}
	return s.submit(spec, reps, priority, deadline, nil)
}

// submit is Submit plus an optional owning group: a non-nil g is attached
// to the job before any lifecycle event beyond the initial queued one can
// fire, so the group observes every transition including a born-done cache
// hit.
func (s *Service) submit(spec *scenario.Spec, reps, priority int, deadline time.Time, g *JobGroup) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if reps <= 0 {
		reps = s.cfg.DefaultReps
	}
	if reps > s.cfg.MaxReps {
		return nil, fmt.Errorf("service: reps %d exceeds the limit %d", reps, s.cfg.MaxReps)
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s-r%d", hash, reps)

	// Cache probe before publication (and before s.mu — the disk layer
	// does file I/O): memory first, then the disk layer, which seeds the
	// memory cache so restarted or memory-evicted results are served at
	// submit time instead of queueing behind running jobs.
	art, hit := s.group.Peek(key)
	if !hit {
		if a, ok := s.loadFromDisk(key); ok {
			if s.group.Add(key, a) {
				s.recordCacheKey(key)
			}
			// Re-read: whichever value won the install races.
			art, hit = s.group.Peek(key)
		}
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("%sj%06d", s.idPrefix, s.nextID)
	j := newJob(id, spec, key, hash, reps, priority, deadline, g)
	if g != nil {
		g.attach(j)
	}
	if hit {
		// Cache fast path: the job is born done *before* it is published
		// in s.jobs, so no DELETE can race its accounting.
		s.met.cacheHits.Add(1)
		s.met.doneOK.Add(1)
		j.complete(art, true)
	} else {
		// Counted while still unpublished for the same reason: a cancel
		// arriving right after publication must find the gauge already
		// incremented before it decrements.
		s.met.jobsQueued.Add(1)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()

	if hit {
		return j, nil
	}
	// Write-ahead journal: the entry lands on disk before the caller
	// learns the job ID, so any job a client was told about survives a
	// crash. CanonicalJSON cannot fail here — Hash above already
	// serialized the same spec.
	if canon, err := spec.CanonicalJSON(); err == nil {
		s.journal.append(journalEntry{ID: id, Spec: canon, Reps: reps, Priority: priority, Deadline: deadline})
	}
	if !s.queue.Push(j) {
		// Shutdown raced the submit; the job is born cancelled rather
		// than orphaned in a queue nobody will drain.
		s.cancelJob(j)
	}
	return j, nil
}

// loadFromDisk probes the disk cache layer for key, treating corruption
// (truncated or non-JSON entries — crash debris, bit rot, fault
// injection) as a miss plus an eviction so the next compute writes a
// clean entry. Chaos disk-error injection also lands here: an injected
// read failure is simply a miss.
func (s *Service) loadFromDisk(key string) (*artifacts, bool) {
	dir, ok := s.cacheEntryDir(key)
	if !ok {
		return nil, false
	}
	if s.chaos.DiskErr() {
		return nil, false
	}
	a, ok, corrupt := loadArtifacts(dir)
	if corrupt {
		s.disk.forget(key)
		return nil, false
	}
	return a, ok
}

// cancelJob requests cancellation and, when the job leaves the lifecycle
// straight from the queue (no runner will ever see it), settles the
// accounting: the cancelled-terminal counter and the queue-depth gauge.
// Every cancellation path — DELETE, shutdown, a submit racing Close —
// funnels through here so the two stay consistent.
func (s *Service) cancelJob(j *Job) bool {
	ok, fromQueued := j.requestCancel()
	if ok && fromQueued {
		s.met.doneCancelled.Add(1)
		s.met.jobsQueued.Add(-1)
		// Drop the dead heap entry now: under submit+cancel churn with
		// busy runners it would otherwise pin the job (and its spec)
		// until a runner drained it, defeating the residency bounds.
		s.queue.Remove(j)
		// A client-driven cancel settles the job; a drain cancel does
		// not — the work is still owed and the journal entry carries it
		// across the restart.
		if !s.draining.Load() {
			s.journal.remove(j.ID)
		}
	}
	return ok
}

// pruneLocked evicts the oldest terminal jobs while the ledger exceeds
// JobHistory. Caller holds s.mu; active jobs are skipped, so the ledger
// may transiently exceed the bound when everything old is still running.
// The common saturated case — oldest entries already terminal — is O(1)
// per submit: drop from the front by reslicing, no ledger rebuild.
func (s *Service) pruneLocked() {
	over := len(s.order) - s.cfg.JobHistory
	if over <= 0 {
		return
	}
	// The newest entry is the job the current Submit is publishing and is
	// never evicted: a born-done cache hit must not 404 before its client
	// even receives the ID (reachable when everything older is active).
	last := len(s.order) - 1
	front := 0
	for over > 0 && front < last && s.jobs[s.order[front]].terminal() {
		delete(s.jobs, s.order[front])
		front++
		over--
	}
	s.order = s.order[front:]
	if over <= 0 {
		return
	}
	// Rare path: something old is still active. Compact around it, bulk-
	// appending the untouched tail (always including the newest entry)
	// once the excess is gone.
	kept := s.order[:0]
	for i, id := range s.order {
		if over == 0 || i == len(s.order)-1 {
			kept = append(kept, s.order[i:]...)
			break
		}
		if s.jobs[id].terminal() {
			delete(s.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns status snapshots of every job in submission order.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel stops the identified job: immediately if queued, at the next
// replicate boundary if running. The second return reports whether the
// job existed; the first whether cancellation was possible (false once
// terminal).
func (s *Service) Cancel(id string) (cancelled, found bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	return s.cancelJob(j), true
}

// SubmitGroup validates and submits every variant spec as a child job of
// one new group named name (the base scenario name; "" defaults to the
// first variant's), at reps replicate seeds and the given queue priority,
// returning the group handle once every variant has been submitted (or the
// expansion was interrupted by a concurrent cancel). Variants must already
// be sweep-free — callers expand sweeps first (scenario.Spec.Expand) — and
// every one is validated before the group is published, so a bad variant
// rejects the whole submission instead of leaving a half-submitted group.
// Cached variants are born done exactly as standalone submissions are, so
// an all-cached group costs zero simulation work.
func (s *Service) SubmitGroup(name string, specs []*scenario.Spec, reps, priority int) (*JobGroup, error) {
	return s.SubmitGroupWithDeadline(name, specs, reps, priority, time.Time{})
}

// SubmitGroupWithDeadline is SubmitGroup with an absolute completion
// deadline inherited by every child job (zero = none); see
// SubmitWithDeadline for the per-job semantics.
func (s *Service) SubmitGroupWithDeadline(name string, specs []*scenario.Spec, reps, priority int, deadline time.Time) (*JobGroup, error) {
	if len(specs) == 0 {
		return nil, errors.New("service: group has no variants")
	}
	if len(specs) > s.cfg.MaxGroupVariants {
		return nil, fmt.Errorf("service: group expands to %d variants, more than the limit %d", len(specs), s.cfg.MaxGroupVariants)
	}
	if reps <= 0 {
		reps = s.cfg.DefaultReps
	}
	if reps > s.cfg.MaxReps {
		return nil, fmt.Errorf("service: reps %d exceeds the limit %d", reps, s.cfg.MaxReps)
	}
	for _, spec := range specs {
		if spec.Sweep != nil {
			return nil, ErrSweep
		}
		if spec.Search != nil {
			return nil, ErrSearch
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}
	g := s.publishGroup(name, specs, reps, priority, deadline)
	s.submitVariants(g, specs)
	return g, nil
}

// publishGroup registers a new group in the ledger before any child is
// submitted, so a concurrent DELETE can find (and interrupt) a group whose
// expansion is still in flight.
func (s *Service) publishGroup(name string, specs []*scenario.Spec, reps, priority int, deadline time.Time) *JobGroup {
	if name == "" {
		name = specs[0].Name
	}
	names := make([]string, len(specs))
	for i, spec := range specs {
		names[i] = spec.Name
	}
	s.mu.Lock()
	s.nextGroupID++
	id := fmt.Sprintf("%sg%06d", s.idPrefix, s.nextGroupID)
	g := newJobGroup(id, name, names, reps, priority, &s.met)
	g.deadline = deadline
	s.met.groupsActive.Add(1)
	s.groups[id] = g
	s.groupOrder = append(s.groupOrder, id)
	s.pruneGroupsLocked()
	s.mu.Unlock()
	return g
}

// submitVariants drives the expansion loop: one child submission per
// variant, honoring a concurrent group cancel both between submissions
// (remaining variants are skipped, counted cancelled without ever becoming
// jobs) and just after one (the fresh child is cancelled like any queued
// job). Child submissions cannot fail validation — SubmitGroup validated
// every spec before publishing — so a submit error here (hashing, a close
// race) fails the group as a unit.
func (s *Service) submitVariants(g *JobGroup, specs []*scenario.Spec) {
	for i, spec := range specs {
		if g.cancelPending() {
			g.skipRemaining(len(specs)-i, "")
			return
		}
		j, err := s.submit(spec, g.Reps, g.Priority, g.deadline, g)
		if err != nil {
			g.skipRemaining(len(specs)-i, fmt.Sprintf("variant %s: %v", spec.Name, err))
			return
		}
		if g.cancelPending() {
			// The cancel raced the submission: the group's job copy may
			// predate this child, so cancel it here; requestCancel's state
			// machine keeps the accounting exactly-once.
			s.cancelJob(j)
		}
	}
}

// Group looks a job group up by ID.
func (s *Service) Group(id string) (*JobGroup, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[id]
	return g, ok
}

// Groups returns status snapshots of every group in submission order.
func (s *Service) Groups() []GroupStatus {
	s.mu.Lock()
	groups := make([]*JobGroup, len(s.groupOrder))
	for i, id := range s.groupOrder {
		groups[i] = s.groups[id]
	}
	s.mu.Unlock()
	out := make([]GroupStatus, len(groups))
	for i, g := range groups {
		out[i] = g.Status()
	}
	return out
}

// CancelGroup stops the identified group: cancellation fans out to every
// child job (immediately for queued ones, at the next replicate boundary
// for running ones) and interrupts a still-running expansion. The second
// return reports whether the group existed; the first whether cancellation
// was possible (false once terminal).
func (s *Service) CancelGroup(id string) (cancelled, found bool) {
	g, ok := s.Group(id)
	if !ok {
		return false, false
	}
	return s.cancelGroup(g), true
}

// cancelGroup marks the group cancel-requested and fans the cancel out to
// the children submitted so far; submitVariants picks the flag up for the
// rest.
func (s *Service) cancelGroup(g *JobGroup) bool {
	g.mu.Lock()
	if g.state.Terminal() {
		g.mu.Unlock()
		return false
	}
	g.cancelReq = true
	jobs := append([]*Job(nil), g.jobs...)
	g.mu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j)
	}
	return true
}

// pruneGroupsLocked evicts the oldest terminal groups while the total
// variant count retained by the ledger exceeds GroupHistory, mirroring
// pruneLocked for jobs: active groups and the newest entry are never
// evicted (so the bound is transiently exceedable while old groups are
// still running, exactly like the job ledger's). Eviction releases the
// group's references to its child jobs — and through them any rendered
// artifacts the job ledger had already let go of. Caller holds s.mu.
func (s *Service) pruneGroupsLocked() {
	over := -s.cfg.GroupHistory
	for _, id := range s.groupOrder {
		over += s.groups[id].variantCount()
	}
	if over <= 0 {
		return
	}
	kept := s.groupOrder[:0]
	for i, id := range s.groupOrder {
		if over <= 0 || i == len(s.groupOrder)-1 {
			kept = append(kept, s.groupOrder[i:]...)
			break
		}
		if s.groups[id].terminal() {
			over -= s.groups[id].variantCount()
			delete(s.groups, id)
			continue
		}
		kept = append(kept, id)
	}
	s.groupOrder = kept
}

// runLoop is one job-runner goroutine: pop, execute, repeat until the
// queue closes.
func (s *Service) runLoop() {
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// jobContext builds the job's execution context below the service base:
// cancelled by DELETE and shutdown like before, and additionally bounded
// by the effective deadline — the earlier of the client's absolute
// ?deadline= and now + MaxJobRuntime — when either is set. A deadline
// already in the past still runs the machinery: RunReplicatedCtx observes
// the expired context before the first replicate, so the job fails fast
// with a deadline error instead of being special-cased here.
func (s *Service) jobContext(j *Job) (context.Context, context.CancelFunc) {
	eff := j.Deadline
	if s.cfg.MaxJobRuntime > 0 {
		if bound := time.Now().Add(s.cfg.MaxJobRuntime); eff.IsZero() || bound.Before(eff) {
			eff = bound
		}
	}
	if eff.IsZero() {
		return context.WithCancel(s.base)
	}
	return context.WithDeadline(s.base, eff)
}

// runJob executes one popped job through the singleflight cache.
func (s *Service) runJob(j *Job) {
	ctx, cancel := s.jobContext(j)
	defer cancel()
	if !j.begin(cancel) {
		return // cancelled while queued; cancelJob already accounted for it
	}
	// The queue-depth gauge tracks jobs in the queued *state*, so the
	// decrement belongs to the state transition, not the heap pop — a
	// cancelled job's dead heap entry must not linger in the gauge.
	s.met.jobsQueued.Add(-1)
	s.met.jobsRunning.Add(1)
	defer s.met.jobsRunning.Add(-1)

	var art *artifacts
	var err error
	computed, diskHit, remoteHit := false, false, false
	for {
		computed, diskHit, remoteHit = false, false, false
		art, err = s.group.Do(j.Key, func() (a *artifacts, err error) {
			// A panicking compute must become an error before it unwinds
			// into Group.Do: an unrecovered panic there would kill the
			// runner goroutine and leave every joined waiter blocked on a
			// done channel nobody will close. Panics below the replicate
			// fan-out are already converted by the pool (runner.PanicError);
			// this recover catches the rest — render bugs, chaos injection.
			defer func() {
				if r := recover(); r != nil {
					if pe, ok := r.(*runner.PanicError); ok {
						err = pe
					} else {
						err = &runner.PanicError{Value: r, Stack: debug.Stack()}
					}
					a = nil
				}
			}()
			computed = true
			if a, ok := s.loadFromDisk(j.Key); ok {
				diskHit = true
				return a, nil
			}
			// Coordinator mode: a spec owned by another live peer executes
			// there — the owner's cache and singleflight make the fleet
			// compute each spec once — and the fetched bytes complete this
			// job verbatim. Any remote trouble falls through to an ordinary
			// local run. Remote results are NOT persisted to the local disk
			// cache: each peer's disk holds only the keys it owns, which is
			// the point of sharding.
			if a, ok := s.tryRemoteExecute(ctx, j); ok {
				remoteHit = true
				return a, nil
			}
			if s.chaos.PanicJob() {
				panic("chaos: injected job panic")
			}
			t0 := time.Now()
			r, runErr := scenario.RunReplicatedCtx(ctx, j.Spec, j.Reps, s.pool, func(done, total int) {
				j.progress(done)
			})
			if runErr != nil {
				return nil, runErr
			}
			a, renderErr := render(r, j.Reps)
			if renderErr != nil {
				return nil, renderErr
			}
			// Only fresh, completed computations feed the admission
			// controller's cost estimate: hits and joins cost nothing and
			// would drag the EWMA toward zero.
			s.adm.observe(time.Since(t0))
			if dir, ok := s.cacheEntryDir(j.Key); ok && !s.chaos.DiskErr() {
				// Persistence is best-effort: a failed write degrades the
				// disk layer, never the response. A successful write is
				// registered with the disk bound so the layer cannot grow
				// without limit.
				if a.save(dir) == nil {
					s.disk.record(j.Key, a.size())
				}
			}
			return a, nil
		})
		if err != nil && !computed && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// We joined another job's flight and its owner was cancelled or
			// hit its own deadline; the errored call is forgotten, so run
			// it ourselves — our context is still live.
			continue
		}
		break
	}

	if err == nil && computed {
		// Register the memoized entry with the eviction FIFO regardless of
		// how this job ends (a cancel racing completion still caches the
		// result), or the CacheEntries bound would leak untracked entries.
		s.recordCacheKey(j.Key)
	}
	// The journal entry is removed for every client-visible settlement
	// (done, failed, a DELETE honored below) but retained when the drain
	// cancelled the job: that work is still owed and is resubmitted by the
	// next process. settle stays true on every arm except drain-cancel.
	settle := true
	var pe *runner.PanicError
	switch {
	case err == nil && ctx.Err() != nil && !errors.Is(ctx.Err(), context.DeadlineExceeded):
		// The cancel request raced result availability (the last replicate
		// was already simulating, or this job had joined another job's
		// flight, which nothing interrupts). The DELETE was acknowledged,
		// so honor it: the result stays cached for future submissions, but
		// this job reports cancelled, not done.
		s.met.doneCancelled.Add(1)
		j.finishCancelled()
		settle = !s.draining.Load()
	case err == nil:
		// Includes a deadline that raced result availability: the work is
		// already paid for, so the result is served rather than discarded.
		// A remote fetch counts as neither a local hit nor a local miss:
		// the owning peer's counters carry the compute, so summing
		// scda_cache_misses_total across the fleet counts each spec once.
		switch {
		case remoteHit:
		case computed && !diskHit:
			s.met.cacheMisses.Add(1)
		default:
			s.met.cacheHits.Add(1)
		}
		s.met.doneOK.Add(1)
		j.complete(art, !computed || diskHit || remoteHit)
	case errors.Is(err, context.DeadlineExceeded):
		// The job's own deadline (client ?deadline= or MaxJobRuntime) cut
		// the run off at a replicate boundary.
		s.met.doneFailed.Add(1)
		j.fail(s.deadlineMsg(j))
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		s.met.doneCancelled.Add(1)
		j.finishCancelled()
		settle = !s.draining.Load()
	default:
		if errors.As(err, &pe) {
			s.met.jobPanics.Add(1)
		}
		s.met.doneFailed.Add(1)
		j.fail(err.Error())
	}
	if settle {
		s.journal.remove(j.ID)
	}
}

// deadlineMsg renders the failure reason for a deadline-cut job, naming
// which bound fired so clients can tell their own deadline from the
// server cap.
func (s *Service) deadlineMsg(j *Job) string {
	if !j.Deadline.IsZero() && (s.cfg.MaxJobRuntime <= 0 || time.Now().After(j.Deadline)) {
		return fmt.Sprintf("deadline exceeded: job deadline %s passed before the run completed", j.Deadline.UTC().Format(time.RFC3339))
	}
	return fmt.Sprintf("deadline exceeded: job exceeded the server max runtime %s", s.cfg.MaxJobRuntime)
}

// recordCacheKey notes a freshly completed memory-cache entry and evicts
// the oldest entries beyond the CacheEntries bound, so distinct-spec
// traffic (sweep variants, fuzzed seeds) cannot grow the resident set
// without limit. Keys re-enter the FIFO if recomputed after eviction.
func (s *Service) recordCacheKey(key string) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.cacheSeen[key] {
		return
	}
	s.cacheSeen[key] = true
	s.cacheKeys = append(s.cacheKeys, key)
	for len(s.cacheKeys) > s.cfg.CacheEntries {
		old := s.cacheKeys[0]
		s.cacheKeys = s.cacheKeys[1:]
		delete(s.cacheSeen, old)
		s.group.Forget(old)
	}
}

// cacheEntryDir returns the disk-cache directory for key, ok=false when
// the disk layer is disabled.
func (s *Service) cacheEntryDir(key string) (string, bool) {
	if s.cfg.CacheDir == "" {
		return "", false
	}
	return filepath.Join(s.cfg.CacheDir, key), true
}

// CacheLen reports the number of completed or in-flight cache entries in
// memory.
func (s *Service) CacheLen() int { return s.group.Len() }
