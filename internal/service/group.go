package service

import (
	"sync"
	"time"
)

// JobGroup is one sweep (or explicit spec array) submitted as a unit: the
// service expands it into variant specs, submits each as an ordinary child
// job through the queue/cache/singleflight machinery, and aggregates their
// lifecycles here. The group itself does no simulation work — cached
// variants are born done exactly as they would be as standalone jobs — it
// only tracks, cancels, and serves its children as a set.
//
// The identity fields are immutable after SubmitGroup publishes the group;
// everything else is guarded by mu. Lock hierarchy: a Job's mu may be held
// when childEvent takes g.mu, so no JobGroup method may call into a Job
// (or the Service) while holding g.mu.
type JobGroup struct {
	// ID is the service-assigned handle ("g000001", ...).
	ID string
	// Name is the base scenario name the group expanded from (the first
	// variant's base for explicit spec arrays).
	Name string
	// Reps is the per-variant replicate count (resolved against the
	// service defaults at submission).
	Reps int
	// Priority is the queue priority every child job was submitted at.
	Priority int

	// deadline is the absolute completion deadline every child inherits
	// (zero = none). Immutable after publishGroup.
	deadline time.Time

	// names holds every variant name in expansion order — including
	// variants that were never submitted because a cancel interrupted the
	// expansion — so status can always account for the full set.
	names []string
	met   *metrics

	mu        sync.Mutex
	jobs      []*Job // attached children, a prefix of names in order
	skipped   int    // trailing variants never submitted (cancel mid-expansion)
	cancelReq bool
	err       string
	state     State
	doneN     int
	failedN   int
	cancelled int
	events    []GroupEvent
	changed   chan struct{} // closed and replaced on every event
	done      chan struct{} // closed once, on reaching a terminal state
}

// GroupEvent is one NDJSON record on a group's event stream: the group's
// state plus the per-variant terminal tallies at the moment the event
// fired. Like job events it carries no wall-clock time, so replaying a
// finished group's stream is deterministic.
type GroupEvent struct {
	// Seq numbers events from 1 within one group.
	Seq int `json:"seq"`
	// State is the group's aggregate state when the event fired.
	State State `json:"state"`
	// Variant names the child whose terminal transition fired this event
	// (empty on group-level transitions).
	Variant string `json:"variant,omitempty"`
	// Done / Failed / Cancelled / Total tally variant outcomes.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Total     int `json:"total"`
	// Error carries the failure reason on a failed group event.
	Error string `json:"error,omitempty"`
}

// GroupStatus is the wire snapshot of a job group, served by the group
// status and list endpoints and returned from SubmitGroup.
type GroupStatus struct {
	// ID is the group handle; the group's URLs derive from it.
	ID string `json:"id"`
	// Name is the base scenario name the group expanded from.
	Name string `json:"name"`
	// State is the aggregate lifecycle state: queued until any variant
	// makes progress, running while any is unsettled, then done (all
	// variants done), failed (any failed), or cancelled.
	State State `json:"state"`
	// Reps / Priority echo the submission knobs applied to every variant.
	Reps     int `json:"reps"`
	Priority int `json:"priority"`
	// Variants is the total variant count; Done, Failed and Cancelled
	// tally the terminal ones.
	Variants  int `json:"variants"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// CacheHits counts variants served without recomputation.
	CacheHits int `json:"cacheHits"`
	// Error carries the submission failure reason for a failed group.
	Error string `json:"error,omitempty"`
	// Jobs holds per-variant job statuses in expansion order. Variants a
	// cancel prevented from ever being submitted appear with an empty ID
	// and state cancelled.
	Jobs []Status `json:"jobs"`
}

// newJobGroup builds a group over the given variant names and emits its
// initial queued event.
func newJobGroup(id, name string, names []string, reps, priority int, met *metrics) *JobGroup {
	g := &JobGroup{
		ID:       id,
		Name:     name,
		Reps:     reps,
		Priority: priority,
		names:    names,
		met:      met,
		state:    StateQueued,
		changed:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	g.emitLocked("")
	return g
}

// attach appends a freshly submitted child in expansion order.
func (g *JobGroup) attach(j *Job) {
	g.mu.Lock()
	g.jobs = append(g.jobs, j)
	g.mu.Unlock()
}

// childEvent observes one child job event: the first running child moves
// the group to running, and each child's (exactly-once) terminal
// transition updates the tallies and, once every variant is settled, the
// group's own terminal state. Called with the child's mu held, so it must
// not call back into any Job.
func (g *JobGroup) childEvent(j *Job, ev Event) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case ev.State == StateRunning:
		if g.state == StateQueued {
			g.state = StateRunning
			g.emitLocked("")
		}
	case ev.State.Terminal():
		switch ev.State {
		case StateDone:
			g.doneN++
		case StateFailed:
			g.failedN++
		case StateCancelled:
			g.cancelled++
		}
		g.emitLocked(j.Spec.Name)
		g.maybeFinishLocked()
	}
}

// skipRemaining accounts for n trailing variants the submission loop never
// submitted (a cancel or a submit error interrupted the expansion): they
// count as cancelled without ever having been jobs. msg, when non-empty,
// records why and turns the group's final state into failed.
func (g *JobGroup) skipRemaining(n int, msg string) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.skipped += n
	g.cancelled += n
	if msg != "" && g.err == "" {
		g.err = msg
	}
	g.emitLocked("")
	g.maybeFinishLocked()
}

// maybeFinishLocked settles the group once every variant is terminal:
// failed beats cancelled beats done, the final event fires, Done() closes,
// and the group metrics move from active to done-by-state. Caller holds
// g.mu.
func (g *JobGroup) maybeFinishLocked() {
	if g.state.Terminal() || g.doneN+g.failedN+g.cancelled < len(g.names) {
		return
	}
	switch {
	case g.failedN > 0 || g.err != "":
		g.state = StateFailed
		g.met.groupsFailed.Add(1)
	case g.cancelled > 0:
		g.state = StateCancelled
		g.met.groupsCancelled.Add(1)
	default:
		g.state = StateDone
		g.met.groupsDone.Add(1)
	}
	g.met.groupsActive.Add(-1)
	g.emitLocked("")
}

// emitLocked appends a group event reflecting the current tallies and
// wakes stream watchers. Caller holds g.mu.
func (g *JobGroup) emitLocked(variant string) {
	g.events = append(g.events, GroupEvent{
		Seq:       len(g.events) + 1,
		State:     g.state,
		Variant:   variant,
		Done:      g.doneN,
		Failed:    g.failedN,
		Cancelled: g.cancelled,
		Total:     len(g.names),
		Error:     g.err,
	})
	close(g.changed)
	g.changed = make(chan struct{})
	if g.state.Terminal() {
		close(g.done)
	}
}

// Done returns a channel closed when every variant has settled and the
// group reached its terminal state.
func (g *JobGroup) Done() <-chan struct{} { return g.done }

// terminal reports whether the group has reached a terminal state.
func (g *JobGroup) terminal() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state.Terminal()
}

// variantCount reports the group's total variant count (immutable), the
// unit the group-ledger bound is measured in.
func (g *JobGroup) variantCount() int { return len(g.names) }

// cancelPending reports whether a cancel has been requested; the
// submission loop consults it between child submissions.
func (g *JobGroup) cancelPending() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cancelReq
}

// snapshot copies the mutable aggregate under the lock; children are
// queried afterwards, outside g.mu, to respect the lock hierarchy.
func (g *JobGroup) snapshot() (jobs []*Job, skipped int, state State, doneN, failedN, cancelled int, errMsg string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Job(nil), g.jobs...), g.skipped, g.state, g.doneN, g.failedN, g.cancelled, g.err
}

// Status returns a consistent snapshot of the group and per-variant job
// statuses in expansion order.
func (g *JobGroup) Status() GroupStatus {
	jobs, skipped, state, doneN, failedN, cancelled, errMsg := g.snapshot()
	st := GroupStatus{
		ID:        g.ID,
		Name:      g.Name,
		State:     state,
		Reps:      g.Reps,
		Priority:  g.Priority,
		Variants:  len(g.names),
		Done:      doneN,
		Failed:    failedN,
		Cancelled: cancelled,
		Error:     errMsg,
		Jobs:      make([]Status, 0, len(g.names)),
	}
	for _, j := range jobs {
		js := j.Status()
		if js.CacheHit && js.State == StateDone {
			st.CacheHits++
		}
		st.Jobs = append(st.Jobs, js)
	}
	// Variants the cancel kept from ever being submitted: synthesized
	// entries so the set always has len(names) rows.
	for i := len(jobs); i < len(jobs)+skipped; i++ {
		st.Jobs = append(st.Jobs, Status{
			Name:     g.names[i],
			State:    StateCancelled,
			Priority: g.Priority,
			Reps:     g.Reps,
		})
	}
	return st
}

// eventsSince returns the group events after fromSeq, the channel that
// signals the next change, and whether the group has terminated — the same
// polling primitive Job.eventsSince provides for the job stream.
func (g *JobGroup) eventsSince(fromSeq int) (evs []GroupEvent, changed <-chan struct{}, terminal bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fromSeq < len(g.events) {
		evs = append(evs, g.events[fromSeq:]...)
	}
	return evs, g.changed, g.state.Terminal()
}

// doneJobs returns the children in expansion order when — and only when —
// the group is done (every variant completed); ok is false otherwise.
func (g *JobGroup) doneJobs() (jobs []*Job, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state != StateDone {
		return nil, false
	}
	return append([]*Job(nil), g.jobs...), true
}
