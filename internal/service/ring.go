package service

// Coordinator mode: the distributed half of scda-serve. N peers started
// with the same -peers list form a static rendezvous-hash ring
// (internal/ring) keyed by the canonical scenario hash — the same
// content address the result cache uses — so the fleet behaves as one
// cache with no coordination protocol beyond single-hop HTTP forwards:
//
//   - POST /v1/jobs on any peer routes by spec hash: local execution on
//     ownership, one forward to the live owner otherwise, and degraded
//     local execution when the owner is down (available, never wrong —
//     runs are deterministic everywhere).
//   - Job and group IDs carry the minting peer's node index ("n2-j000007"),
//     so status/result/events/cancel requests for a remote job are
//     transparently proxied from any peer to its owner.
//   - The X-Scda-Forwarded header is the loop guard: a forwarded request
//     is never forwarded again. A peer that receives one for a key it
//     does not own answers 502 — peers disagreeing on ownership is a
//     static misconfiguration, not something to route around.
//   - Group expansion fans variants across the ring: each child job is
//     local to the entry peer, but its computation executes on the
//     variant's owner (remoteExecute) so fleet-wide each spec is
//     computed once, wherever it is submitted.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/ring"
	"repro/internal/scenario"
)

// forwardedHeader marks a request that already crossed one peer hop.
// Its value is the forwarding peer's URL (diagnostic); its presence is
// the single-hop guarantee — no request is ever forwarded twice.
const forwardedHeader = "X-Scda-Forwarded"

// defaultProbeInterval is the background health-probe period when the
// config leaves ProbeInterval zero.
const defaultProbeInterval = 2 * time.Second

// probeTimeout bounds one /readyz health probe; a peer slower than this
// is as good as down for routing purposes.
const probeTimeout = time.Second

// setupRing wires coordinator mode when the config names a fleet: the
// rendezvous ring, the /readyz health prober, the proxying HTTP client,
// and the node prefix on job and group IDs. A nil return of everything
// (single-node mode) is the default. Invalid ring config (self missing
// from the peer list, empty URLs) panics: it is a static
// misconfiguration that must stop the process at start — cmd/scda-serve
// validates first and fails with a polite message.
func (s *Service) setupRing(cfg Config) {
	if cfg.Self == "" && len(cfg.Peers) == 0 {
		return
	}
	rg, err := ring.New(cfg.Self, cfg.Peers)
	if err != nil {
		panic(err)
	}
	s.ring = rg
	s.idPrefix = fmt.Sprintf("n%d-", rg.SelfIndex())
	// No client-level timeout: forwarded ?wait=true submissions and
	// proxied NDJSON event streams are legitimately long-lived; every
	// call is bounded by its request context instead.
	s.ringHTTP = &http.Client{}
	probe := &http.Client{Timeout: probeTimeout}
	s.prober = ring.NewProber(rg, func(ctx context.Context, peer string) bool {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
		if err != nil {
			return false
		}
		resp, err := probe.Do(req)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	if cfg.ProbeInterval >= 0 {
		iv := cfg.ProbeInterval
		if iv == 0 {
			iv = defaultProbeInterval
		}
		s.prober.Start(iv)
	}
}

// Ring returns the placement ring in coordinator mode, nil single-node.
func (s *Service) Ring() *ring.Ring { return s.ring }

// ProbePeers runs one synchronous health-probe round over every peer;
// a no-op single-node. The deterministic alternative to waiting out the
// background probe interval — tests and operators drive health
// transitions with it.
func (s *Service) ProbePeers(ctx context.Context) {
	if s.prober != nil {
		s.prober.CheckOnce(ctx)
	}
}

// PeerHealth returns per-peer health snapshots in ring order, nil
// single-node.
func (s *Service) PeerHealth() []ring.PeerHealth {
	if s.prober == nil {
		return nil
	}
	return s.prober.Snapshot()
}

// splitNodeID parses an ID minted by a ring peer ("n3-j000042" → node
// 3); ok is false for bare single-node IDs and foreign formats.
func splitNodeID(id string) (node int, ok bool) {
	if len(id) < 4 || id[0] != 'n' {
		return 0, false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// jobSeq extracts the numeric sequence from a job ID ("j000007", or the
// ring-prefixed "n2-j000007"), for seeding nextID past journaled IDs;
// ok is false for foreign formats.
func jobSeq(id string) (int, bool) {
	i := strings.LastIndexByte(id, 'j')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// routeRemote resolves whether the job or group ID belongs to another
// ring peer; peer is that peer's URL when remote is true. Single-node
// IDs, this peer's own IDs, and out-of-range node indices (a different
// fleet's ID — the local lookup will 404 honestly) all stay local.
func (s *Service) routeRemote(id string) (peer string, remote bool) {
	if s.ring == nil {
		return "", false
	}
	n, ok := splitNodeID(id)
	if !ok || n == s.ring.SelfIndex() {
		return "", false
	}
	p, ok := s.ring.Peer(n)
	if !ok {
		return "", false
	}
	return p, true
}

// proxyToPeer transparently relays a status/result/events/cancel
// request to the peer that minted the resource's ID, streaming the
// response back (per-chunk flushes keep proxied NDJSON event streams
// live). A request that already crossed a hop is refused with 502 — the
// single-hop guard — because two peers disagreeing about an ID's home
// is a misconfigured fleet, and hot-potato routing would loop forever.
func (s *Service) proxyToPeer(w http.ResponseWriter, r *http.Request, peer string) {
	if r.Header.Get(forwardedHeader) != "" {
		s.met.ringLoops.Add(1)
		httpError(w, http.StatusBadGateway,
			"ring: request for %s already crossed a peer hop; peers disagree on ownership (inconsistent -peers lists?)", r.URL.Path)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, peer+r.URL.RequestURI(), r.Body)
	if err != nil {
		httpError(w, http.StatusBadGateway, "ring: building proxy request for %s: %v", peer, err)
		return
	}
	req.Header.Set(forwardedHeader, s.ring.Self())
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := s.ringHTTP.Do(req)
	if err != nil {
		s.prober.ReportFailure(peer)
		httpError(w, http.StatusBadGateway, "ring: peer %s unreachable: %v", peer, err)
		return
	}
	defer resp.Body.Close()
	s.prober.ReportSuccess(peer)
	s.met.ringProxied.Add(1)
	relayResponse(w, resp)
}

// relayResponse copies a peer's response to the client: status, the
// headers that matter, then the body in flushed chunks. Each chunk
// extends the connection's write deadline the same way the local NDJSON
// streamer does, so a proxied event stream is not cut by WriteTimeout.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Content-Length", "Location", "Retry-After", "Cache-Control"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			rc.SetWriteDeadline(time.Now().Add(streamWriteSlack))
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleSubmitRing is the coordinator-mode POST /v1/jobs path. Unlike
// the single-node edge, the body must be read before admission — the
// spec hash is the route — after which exactly one of three things
// happens: local execution on ownership, a single-hop forward to the
// live owner, or degraded local fallback when the owner is down or
// unreachable mid-forward. Forwarded requests are never forwarded
// again: a forwarded spec this peer does not own answers 502.
func (s *Service) handleSubmitRing(w http.ResponseWriter, r *http.Request) {
	reps, priority, deadline, ok := s.submitParams(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := scenario.Parse(bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Sweep != nil {
		httpError(w, http.StatusBadRequest, "%v", ErrSweep)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	owner := s.ring.Owner(hash)
	switch {
	case owner == s.ring.Self():
		// Fall through to local execution below.
	case r.Header.Get(forwardedHeader) != "":
		s.met.ringLoops.Add(1)
		httpError(w, http.StatusBadGateway,
			"ring: forwarded spec %s is owned by %s, not this peer %s; peers disagree on ownership (inconsistent -peers lists?)",
			hash, owner, s.ring.Self())
		return
	case s.prober.Up(owner):
		s.met.ringForwards.Add(1)
		if s.forwardSubmit(w, r, owner, body) {
			return
		}
		// The owner died between the health check and the forward;
		// nothing was written, the body is in hand — degrade to local.
		s.met.ringFallbacks.Add(1)
	default:
		s.met.ringFallbacks.Add(1)
	}
	if retryAfter, ok := s.admitHTTP(priority, 1); !ok {
		s.shed(w, retryAfter)
		return
	}
	s.finishSubmit(w, r, spec, reps, priority, deadline)
}

// forwardSubmit relays a submission to the owning peer and streams its
// response back verbatim — the client sees the owner's job, Location
// header and all, so every later request routes by the ID's node
// prefix. A false return means the peer could not be reached and
// nothing was written: the caller still owns the response and falls
// back to local execution.
func (s *Service) forwardSubmit(w http.ResponseWriter, r *http.Request, peer string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, peer+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set(forwardedHeader, s.ring.Self())
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.ringHTTP.Do(req)
	if err != nil {
		s.prober.ReportFailure(peer)
		return false
	}
	defer resp.Body.Close()
	s.prober.ReportSuccess(peer)
	relayResponse(w, resp)
	return true
}

// tryRemoteExecute attempts to satisfy a locally queued job whose spec
// is owned by another live peer by executing it there — the path group
// children (and programmatic submissions) take, so fleet-wide each spec
// computes once wherever it enters. ok=false means compute locally:
// single-node mode, self-owned keys, a downed owner, or any remote
// error (degraded but available, never wrong — the local run is
// byte-identical by determinism).
func (s *Service) tryRemoteExecute(ctx context.Context, j *Job) (*artifacts, bool) {
	if s.ring == nil || j.hash == "" {
		return nil, false
	}
	owner := s.ring.Owner(j.hash)
	if owner == s.ring.Self() {
		return nil, false
	}
	if !s.prober.Up(owner) {
		s.met.ringFallbacks.Add(1)
		return nil, false
	}
	a, err := s.remoteExecute(ctx, owner, j)
	if err != nil {
		// A cancelled context is not degradation — the local path will
		// observe the same cancel immediately.
		if ctx.Err() == nil {
			s.met.ringFallbacks.Add(1)
		}
		return nil, false
	}
	s.met.ringRemote.Add(1)
	return a, true
}

// remoteExecute runs j's spec on the owning peer: one forwarded
// ?wait=true submission (the owner's queue, cache and singleflight
// apply as if the client had hit it directly), then a bulk artifact
// fetch — the bytes served locally afterwards are the owner's bytes,
// verbatim.
func (s *Service) remoteExecute(ctx context.Context, peer string, j *Job) (*artifacts, error) {
	body, err := j.Spec.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	q := url.Values{"wait": {"true"}}
	if j.Reps > 0 {
		q.Set("reps", strconv.Itoa(j.Reps))
	}
	if j.Priority != 0 {
		q.Set("priority", strconv.Itoa(j.Priority))
	}
	if !j.Deadline.IsZero() {
		q.Set("deadline", j.Deadline.UTC().Format(time.RFC3339Nano))
	}
	st := Status{}
	b, err := s.ringDo(ctx, http.MethodPost, peer, "/v1/jobs?"+q.Encode(), body)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("ring: decoding job status from %s: %w", peer, err)
	}
	if st.State != StateDone {
		return nil, fmt.Errorf("ring: remote job %s on %s ended %s: %s", st.ID, peer, st.State, st.Error)
	}
	ab, err := s.ringDo(ctx, http.MethodGet, peer, "/v1/jobs/"+st.ID+"/artifacts", nil)
	if err != nil {
		return nil, err
	}
	var files map[string][]byte
	if err := json.Unmarshal(ab, &files); err != nil {
		return nil, fmt.Errorf("ring: decoding artifacts from %s: %w", peer, err)
	}
	if _, ok := files[artResult]; !ok {
		return nil, fmt.Errorf("ring: artifact set from %s lacks %s", peer, artResult)
	}
	return &artifacts{files: files}, nil
}

// ringDo performs one fleet-internal HTTP exchange: forwarded header
// set, full body read, non-2xx turned into an error carrying the
// service's error envelope, and the peer's health updated from the
// outcome.
func (s *Service) ringDo(ctx context.Context, method, peer, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, peer+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(forwardedHeader, s.ring.Self())
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.ringHTTP.Do(req)
	if err != nil {
		s.prober.ReportFailure(peer)
		return nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		s.prober.ReportFailure(peer)
		return nil, err
	}
	s.prober.ReportSuccess(peer)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg := strings.TrimSpace(string(b))
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &env) == nil && env.Error != "" {
			msg = env.Error
		}
		return nil, fmt.Errorf("ring: peer %s answered %d: %s", peer, resp.StatusCode, msg)
	}
	return b, nil
}
