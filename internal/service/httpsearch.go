package service

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
)

// handleSearches serves the search collection: POST submits, GET lists.
func (s *Service) handleSearches(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSearchSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Searches())
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/searches", r.Method)
	}
}

// handleSearchSubmit parses a spec with a search block and starts the
// engine, answering with the search status (201 for a fresh search, 200
// once terminal — after ?wait=true). The search always runs on the peer
// that accepted it; only its evaluations fan across the ring.
func (s *Service) handleSearchSubmit(w http.ResponseWriter, r *http.Request) {
	reps, priority, deadline, ok := s.submitParams(w, r)
	if !ok {
		return
	}
	if !deadline.IsZero() {
		// A search is many jobs over many rounds; a single absolute
		// deadline on all of them would make the trajectory depend on
		// wall-clock. The spec's maxSeconds valve is the supported cut.
		httpError(w, http.StatusBadRequest, "deadline: not supported on searches; set maxSeconds in the search block instead")
		return
	}
	spec, err := scenario.Parse(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Search == nil {
		httpError(w, http.StatusBadRequest, "spec has no search block; submit plain specs to /v1/jobs or /v1/groups")
		return
	}
	// Admission after the parse, like groups: the load a search carries is
	// its round width, which only the compiled spec knows.
	if retryAfter, ok := s.admitHTTP(priority, searchAdmissionWidth(spec)); !ok {
		s.shed(w, retryAfter)
		return
	}
	sj, err := s.SubmitSearch(spec, reps, priority)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		select {
		case <-sj.Done():
			http.NewResponseController(w).SetWriteDeadline(time.Now().Add(streamWriteSlack))
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away while waiting for %s", sj.ID)
			return
		}
	}
	st := sj.Status()
	w.Header().Set("Location", "/v1/searches/"+sj.ID)
	code := http.StatusCreated
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// searchAdmissionWidth estimates what one round of the submitted search
// charges against the latency SLO: the declared round width, before
// compilation fills in strategy defaults (a zero points falls back to the
// largest default so under-declared searches are not under-charged).
func searchAdmissionWidth(spec *scenario.Spec) int {
	n := spec.Search.Points
	if len(spec.Search.Values) > 0 && n < len(spec.Search.Values) {
		n = len(spec.Search.Values)
	}
	if n <= 0 {
		n = 8
	}
	return n
}

// handleSearch routes /v1/searches/{id}[/result|/events]. In coordinator
// mode a search minted by another peer is proxied to it (searches live on
// their entry peer; only their evaluations fan out).
func (s *Service) handleSearch(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/searches/")
	id, sub, _ := strings.Cut(rest, "/")
	if peer, remote := s.routeRemote(id); remote {
		s.proxyToPeer(w, r, peer)
		return
	}
	sj, ok := s.Search(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no search %q", id)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, sj.Status())
		case http.MethodDelete:
			s.handleSearchCancel(w, sj)
		default:
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a search", r.Method)
		}
	case "result":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on a search result", r.Method)
			return
		}
		s.handleSearchResult(w, r, sj)
	case "events":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on an event stream", r.Method)
			return
		}
		streamLines(w, r, s.cfg.HeartbeatInterval, s.chaos, sj.eventsSince)
	default:
		httpError(w, http.StatusNotFound, "no resource %q under search %s", sub, id)
	}
}

// handleSearchCancel cancels a search over the API: no further rounds,
// and the cancel fans out to the in-flight round's jobs.
func (s *Service) handleSearchCancel(w http.ResponseWriter, sj *SearchJob) {
	cancelled, _ := s.CancelSearch(sj.ID)
	if !cancelled {
		httpError(w, http.StatusConflict, "search %s already %s", sj.ID, sj.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, sj.Status())
}

// handleSearchResult serves the completed search: the deterministic
// result document (incumbent, canonical incumbent spec, metric trajectory
// and the full per-round table) by default, or — with ?csv=trajectory —
// the round-by-round incumbent CSV. Both are free of job IDs, cache flags
// and timestamps, so an identical resubmitted search serves byte-identical
// bytes.
func (s *Service) handleSearchResult(w http.ResponseWriter, r *http.Request, sj *SearchJob) {
	res, ok := sj.Result()
	if !ok {
		httpError(w, http.StatusConflict, "search %s is %s; the result exists only once it is done", sj.ID, sj.Status().State)
		return
	}
	if kind := r.URL.Query().Get("csv"); kind != "" {
		if kind != "trajectory" {
			httpError(w, http.StatusNotFound, "search %s has no %s CSV (have trajectory)", sj.ID, kind)
			return
		}
		b := res.TrajectoryCSV()
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(b)))
		w.Write(b)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
