package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/scenario"
)

// artifacts is the rendered, immutable output of one completed run: a
// small map of file name → bytes ("result.json", "summary.csv", one
// "<kind>.csv" per requested series reduction). Rendering happens exactly
// once, at completion, so cache hits — the million-user hot path — serve
// pre-encoded bytes and repeated fetches of one job are byte-identical by
// construction. The CSV artifacts share their encoders with
// scenario.Result.WriteFiles, so they are also byte-identical to what
// `scda-sim -scenario` writes for the same spec, seed and reps.
type artifacts struct {
	files map[string][]byte
}

// Artifact file names; the series CSVs are named "<kind>.csv" after the
// scenario output kinds (throughput.csv, fct-cdf.csv, afct.csv).
const (
	artResult  = "result.json"
	artSummary = "summary.csv"
)

// file returns the named artifact's bytes.
func (a *artifacts) file(name string) ([]byte, bool) {
	b, ok := a.files[name]
	return b, ok
}

// size is the total rendered byte count across the artifact files — the
// same number a persisted disk-cache entry occupies, since save writes
// exactly these bytes.
func (a *artifacts) size() int64 {
	var total int64
	for _, b := range a.files {
		total += int64(len(b))
	}
	return total
}

// resultWire is the JSON shape of the result endpoint's default document.
type resultWire struct {
	// Name, Seed, Replicates, Requests identify the run.
	Name       string `json:"name"`
	Seed       uint64 `json:"seed"`
	Replicates int    `json:"replicates"`
	Requests   int    `json:"requests"`
	// Summary holds the headline metrics (replicated runs add _ci95 keys).
	Summary map[string]float64 `json:"summary"`
	// Groups carries the requested series reductions in spec order.
	Groups []groupWire `json:"groups"`
}

// groupWire mirrors scenario.SeriesGroup.
type groupWire struct {
	// Kind is the reduction ("throughput", "fct-cdf", "afct").
	Kind string `json:"kind"`
	// XLabel / YLabel are the axis labels.
	XLabel string `json:"xLabel"`
	YLabel string `json:"yLabel"`
	// Series holds one entry per system curve.
	Series []seriesWire `json:"series"`
}

// seriesWire mirrors stats.Series.
type seriesWire struct {
	// Name labels the curve.
	Name string `json:"name"`
	// Points are [x, y] pairs.
	Points [][2]float64 `json:"points"`
	// YErr, when present, is the 95% CI half-width per point.
	YErr []float64 `json:"yerr,omitempty"`
}

// render builds the artifacts for a completed result: the JSON document
// plus the same CSV bytes the CLI writes.
func render(r *scenario.Result, reps int) (*artifacts, error) {
	a := &artifacts{files: make(map[string][]byte, len(r.Groups)+2)}

	wire := resultWire{
		Name:       r.Spec.Name,
		Seed:       r.Spec.Seed,
		Replicates: reps,
		Requests:   r.Requests,
		Summary:    r.Summary,
		Groups:     make([]groupWire, 0, len(r.Groups)),
	}
	for _, g := range r.Groups {
		gw := groupWire{Kind: g.Kind, XLabel: g.XLabel, YLabel: g.YLabel}
		for _, s := range g.Series {
			sw := seriesWire{Name: s.Name, Points: make([][2]float64, len(s.Points)), YErr: s.YErr}
			for i, p := range s.Points {
				sw.Points[i] = [2]float64{p.X, p.Y}
			}
			gw.Series = append(gw.Series, sw)
		}
		wire.Groups = append(wire.Groups, gw)
	}
	doc, err := json.MarshalIndent(wire, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("service: rendering result: %w", err)
	}
	a.files[artResult] = append(doc, '\n')

	var sum bytes.Buffer
	if err := r.WriteSummaryCSV(&sum); err != nil {
		return nil, fmt.Errorf("service: rendering summary: %w", err)
	}
	a.files[artSummary] = sum.Bytes()

	for _, g := range r.Groups {
		var buf bytes.Buffer
		if err := r.WriteSeriesCSV(&buf, g.Kind); err != nil {
			return nil, fmt.Errorf("service: rendering %s: %w", g.Kind, err)
		}
		a.files[g.Kind+".csv"] = buf.Bytes()
	}
	if r.HasTrace() {
		// outputs.trace parity with the CLI: single-seed runs carry the
		// replayable workload trace as a fourth CSV (?csv=trace).
		var buf bytes.Buffer
		if err := r.WriteTraceCSV(&buf); err != nil {
			return nil, fmt.Errorf("service: rendering trace: %w", err)
		}
		a.files["trace.csv"] = buf.Bytes()
	}
	return a, nil
}

// seriesKinds lists the series artifact names in a stable order for
// discovery (status pages, tests).
func (a *artifacts) seriesKinds() []string {
	kinds := make([]string, 0, len(a.files))
	for name := range a.files {
		if name != artResult && name != artSummary && strings.HasSuffix(name, ".csv") {
			kinds = append(kinds, strings.TrimSuffix(name, ".csv"))
		}
	}
	sort.Strings(kinds)
	return kinds
}

// save persists the artifacts under dir (one file per artifact), writing
// into a temporary sibling directory and renaming so a crashed writer
// never leaves a half-written cache entry. A concurrent winner is fine:
// entries are content-addressed, so whoever renames first wrote the same
// bytes.
func (a *artifacts) save(dir string) error {
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".tmp-"+filepath.Base(dir)+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for name, b := range a.files {
		if err := os.WriteFile(filepath.Join(tmp, name), b, 0o644); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dir); err != nil {
		if _, statErr := os.Stat(dir); statErr == nil {
			return nil // another writer persisted the same content first
		}
		return err
	}
	return nil
}

// loadArtifacts reads a persisted cache entry back. ok is false when the
// entry cannot be served; corrupt additionally reports that a directory
// was present but its content is damaged — a missing or truncated or
// non-JSON result.json — so the caller can evict it rather than leave a
// poison entry that would fail every future load. An absent directory is
// a plain miss (ok=false, corrupt=false): the entry was never written or
// was legitimately evicted.
func loadArtifacts(dir string) (a *artifacts, ok, corrupt bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, false
		}
		return nil, false, true
	}
	a = &artifacts{files: make(map[string][]byte, len(entries))}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, false, true
		}
		a.files[e.Name()] = b
	}
	// A directory that exists but lacks a parseable result document is a
	// half-written or bit-rotted entry: tmp+rename should make this
	// impossible, but the cache tolerates it anyway (crashed pre-rename
	// kernels, manual tampering, fault injection) — corruption is a miss
	// plus an eviction, never a startup or request failure.
	res, ok := a.files[artResult]
	if !ok || !json.Valid(res) {
		return nil, false, true
	}
	return a, true, false
}
