package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// searchSpec is testSpec plus a discrete search block: one round, two
// evaluations — the smallest real search.
const searchSpec = `{
  "version": 1,
  "name": "svc-test",
  "seed": 3,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "outputs": {"series": ["throughput", "fct-cdf"]},
  "search": {"metric": "afct", "parameter": "system.rscale", "values": [1e7, 5e7]}
}`

// postSearch submits a search spec and decodes the search status.
func postSearch(t *testing.T, ts *httptest.Server, spec, query string) (SearchStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/searches"+query, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var st SearchStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return st, resp.StatusCode
}

func TestSearchEndToEndAndCacheReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobRunners: 2})

	// Before any search, the exposition carries no search families at all
	// — the byte-stability contract for services that never run one.
	if b, _ := get(t, ts.URL+"/metrics"); bytes.Contains(b, []byte("scda_search")) {
		t.Fatal("search metrics rendered before any search was submitted")
	}

	st, code := postSearch(t, ts, searchSpec, "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("search submit: %d %+v", code, st)
	}
	if st.State != StateDone || st.Rounds != 1 || st.Evaluations != 2 {
		t.Fatalf("search status %+v, want done after 1 round / 2 evaluations", st)
	}
	if st.CacheHits != 0 {
		t.Fatalf("first search reported %d cache hits, want 0", st.CacheHits)
	}
	if st.Incumbent == nil || st.Strategy != "grid-refine" || st.Metric != "mean_fct_s" {
		t.Fatalf("search status %+v, want resolved strategy/metric and an incumbent", st)
	}
	if !strings.HasPrefix(st.ID, "s") {
		t.Fatalf("search ID %q", st.ID)
	}

	// The list and status endpoints agree.
	if b, code := get(t, ts.URL+"/v1/searches"); code != http.StatusOK || !bytes.Contains(b, []byte(st.ID)) {
		t.Fatalf("search list: %d %s", code, b)
	}
	if b, code := get(t, ts.URL+"/v1/searches/"+st.ID); code != http.StatusOK || !bytes.Contains(b, []byte(`"state": "done"`)) {
		t.Fatalf("search status fetch: %d %s", code, b)
	}

	// Result document: deterministic, with the incumbent's canonical spec
	// and no job IDs or cache flags anywhere.
	result1, code := get(t, ts.URL+"/v1/searches/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("search result: %d %s", code, result1)
	}
	for _, leak := range []string{`"cacheHit"`, `"id":`, `"j0`} {
		if bytes.Contains(result1, []byte(leak)) {
			t.Fatalf("result document leaks %s: %s", leak, result1)
		}
	}
	var doc struct {
		Incumbent     *struct{ Name string } `json:"incumbent"`
		IncumbentSpec json.RawMessage        `json:"incumbentSpec"`
	}
	if err := json.Unmarshal(result1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Incumbent == nil || len(doc.IncumbentSpec) == 0 {
		t.Fatalf("result lacks incumbent or its spec: %s", result1)
	}
	traj1, code := get(t, ts.URL+"/v1/searches/"+st.ID+"/result?csv=trajectory")
	if code != http.StatusOK || !bytes.HasPrefix(traj1, []byte("round,reps,evaluations,pruned,incumbent,value,objective\n")) {
		t.Fatalf("trajectory: %d %s", code, traj1)
	}
	if _, code := get(t, ts.URL+"/v1/searches/"+st.ID+"/result?csv=summary"); code != http.StatusNotFound {
		t.Fatalf("unknown search CSV kind served: %d", code)
	}

	// Event stream replay: queued, running, one round (with incumbent),
	// done — and no wall-clock anywhere.
	events, code := get(t, ts.URL+"/v1/searches/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	lines := bytes.Split(bytes.TrimSpace(events), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("event stream has %d lines, want 4: %s", len(lines), events)
	}
	if !bytes.Contains(lines[2], []byte(`"round":1`)) || !bytes.Contains(lines[2], []byte(`"incumbent"`)) {
		t.Fatalf("round event: %s", lines[2])
	}

	missesAfterFirst := metricLine(t, ts, "scda_cache_misses_total")
	if missesAfterFirst != 2 {
		t.Fatalf("misses after first search: %d, want 2", missesAfterFirst)
	}
	if rounds := metricLine(t, ts, "scda_search_rounds_total"); rounds != 1 {
		t.Fatalf("scda_search_rounds_total %d, want 1", rounds)
	}

	// Identical resubmission: a pure cache replay — zero simulation work,
	// byte-identical result and trajectory.
	st2, code := postSearch(t, ts, searchSpec, "?wait=true")
	if code != http.StatusOK || st2.State != StateDone {
		t.Fatalf("resubmit: %d %+v", code, st2)
	}
	if st2.CacheHits != st2.Evaluations || st2.Evaluations != 2 {
		t.Fatalf("replayed search: %d cache hits of %d evaluations, want all", st2.CacheHits, st2.Evaluations)
	}
	if got := metricLine(t, ts, "scda_cache_misses_total"); got != missesAfterFirst {
		t.Fatalf("replay computed fresh work: misses %d -> %d", missesAfterFirst, got)
	}
	result2, _ := get(t, ts.URL+"/v1/searches/"+st2.ID+"/result")
	if !bytes.Equal(result1, result2) {
		t.Fatalf("replayed result differs:\n%s\nvs\n%s", result1, result2)
	}
	traj2, _ := get(t, ts.URL+"/v1/searches/"+st2.ID+"/result?csv=trajectory")
	if !bytes.Equal(traj1, traj2) {
		t.Fatalf("replayed trajectory differs:\n%s\nvs\n%s", traj1, traj2)
	}

	// The incumbent's canonical spec round-trips as an ordinary job
	// submission — and is already cached.
	var spec json.RawMessage = doc.IncumbentSpec
	jst, code := submit(t, ts, string(spec), "?wait=true")
	if code != http.StatusOK || jst.State != StateDone || !jst.CacheHit {
		t.Fatalf("incumbent spec resubmission: %d %+v, want a cached done job", code, jst)
	}
}

// metricLine reads one unlabeled metric family's value from the test
// server's exposition (0 when absent).
func metricLine(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	b, code := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v int64
			if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func TestSearchSpecRejectedOnJobAndGroupEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})
	if _, code := submit(t, ts, searchSpec, ""); code != http.StatusBadRequest {
		t.Fatalf("search spec on /v1/jobs: %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/groups", "application/json", strings.NewReader(searchSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(b, []byte("/v1/searches")) {
		t.Fatalf("search spec on /v1/groups: %d %s, want 400 pointing at /v1/searches", resp.StatusCode, b)
	}
	// And a plain spec is still rejected on the search endpoint.
	if _, code := postSearch(t, ts, testSpec, ""); code != http.StatusBadRequest {
		t.Fatalf("plain spec on /v1/searches: %d, want 400", code)
	}
}

// slowSearchSpec searches over two fresh seeds of the heavy scenario at
// two replicates each, so a cancel lands at a replicate boundary long
// before the round completes.
const slowSearchSpec = `{
  "version": 1,
  "name": "svc-slow",
  "seed": 5,
  "duration": 30,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 6}}],
  "search": {"metric": "afct", "parameter": "seed", "values": [205, 206]}
}`

func TestSearchCancelFansOutToInFlightRound(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, JobRunners: 1})

	st, code := postSearch(t, ts, slowSearchSpec, "?reps=2")
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %+v", code, st)
	}
	sj, ok := svc.Search(st.ID)
	if !ok {
		t.Fatalf("search %s not in ledger", st.ID)
	}
	// Wait until the round's first child job is actually executing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		running := false
		for _, js := range svc.Jobs() {
			if js.State == StateRunning {
				running = true
			}
		}
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no child job started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/searches/"+st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp != http.StatusOK {
		t.Fatalf("cancel: %d", resp)
	}
	select {
	case <-sj.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("search did not settle after cancel")
	}
	if got := sj.Status().State; got != StateCancelled {
		t.Fatalf("state %s after cancel", got)
	}
	// Every child the round submitted is terminal too — the fan-out.
	for _, js := range svc.Jobs() {
		if !js.State.Terminal() {
			t.Fatalf("child %s still %s after search cancel", js.ID, js.State)
		}
	}
	// A second DELETE conflicts.
	if code, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/searches/"+st.ID); err != nil || code != http.StatusConflict {
		t.Fatalf("second cancel: %d %v", code, err)
	}
}

// newRequest issues a bodyless request and returns the status code.
func newRequest(t *testing.T, method, url string) (int, error) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
