// Ring-mode acceptance for the adaptive search engine: the search runs on
// whichever peer accepted it, but its evaluations are ordinary jobs that
// fan across the fleet's content-addressed ring — so two peers running
// the same search converge to the same incumbent while the fleet computes
// each distinct variant exactly once.
package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/service/servicetest"
)

// ringSearchSpec is a two-round halving search over four discrete rscale
// values: round one evaluates all four at one replicate, round two the
// surviving two at two replicates — six distinct (variant, reps) cache
// keys fleet-wide.
const ringSearchSpec = `{
  "version": 1,
  "name": "ring-search",
  "seed": 11,
  "duration": 6,
  "topology": {"kind": "fig6", "x": 5e7, "k": 3},
  "workload": [{"generator": "dc", "params": {"ArrivalRate": 3}}],
  "search": {"metric": "afct", "parameter": "system.rscale",
             "values": [1e7, 3e7, 5e7, 9e7], "strategy": "halving"}
}`

// postSearchTo submits a search spec to one peer and decodes the status.
func postSearchTo(t *testing.T, base, body, query string) (service.SearchStatus, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/searches"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var st service.SearchStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("decoding %s: %v", b, err)
		}
	}
	return st, resp.StatusCode
}

func TestRingSearchConvergesOnceFleetWide(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-peer search e2e")
	}
	fleet := servicetest.StartRing(t, 3, nil)

	// First submission, entering at peer 0: everything computes fresh.
	st1, code := postSearchTo(t, fleet.Peers[0].URL, ringSearchSpec, "?wait=true")
	if code != http.StatusOK || st1.State != service.StateDone {
		t.Fatalf("search via peer 0: %d %+v", code, st1)
	}
	if st1.Rounds != 2 || st1.Evaluations != 6 || st1.Incumbent == nil {
		t.Fatalf("search status %+v, want 2 rounds / 6 evaluations and an incumbent", st1)
	}
	if nodeOf(t, st1.ID) != 0 {
		t.Fatalf("search %s not minted by its entry peer", st1.ID)
	}

	// The fleet computed each distinct (variant, reps) key exactly once:
	// the peer-summed miss counter equals the evaluation count, however the
	// ring happened to spread them.
	misses := func() (total int64) {
		for _, p := range fleet.Peers {
			total += metricValue(t, p.URL, "scda_cache_misses_total")
		}
		return total
	}
	after1 := misses()
	if after1 != int64(st1.Evaluations) {
		t.Fatalf("fleet-wide misses %d after first search, want %d (one per distinct variant)", after1, st1.Evaluations)
	}

	// Any peer can answer for the search — ID routing proxies to its home.
	if b, code := getBytes(t, fleet.Peers[2].URL+"/v1/searches/"+st1.ID); code != http.StatusOK || !bytes.Contains(b, []byte(st1.ID)) {
		t.Fatalf("search status via peer 2: %d %s", code, b)
	}

	// Same search through a different entry peer: same trajectory, same
	// incumbent, zero fresh simulation work anywhere in the fleet.
	st2, code := postSearchTo(t, fleet.Peers[1].URL, ringSearchSpec, "?wait=true")
	if code != http.StatusOK || st2.State != service.StateDone {
		t.Fatalf("search via peer 1: %d %+v", code, st2)
	}
	if nodeOf(t, st2.ID) != 1 {
		t.Fatalf("search %s not minted by its entry peer", st2.ID)
	}
	if st2.Evaluations != st1.Evaluations || st2.CacheHits != st2.Evaluations {
		t.Fatalf("replayed search %+v, want %d evaluations all served from the fleet cache", st2, st1.Evaluations)
	}
	if after2 := misses(); after2 != after1 {
		t.Fatalf("replay computed fresh work: fleet-wide misses %d -> %d", after1, after2)
	}
	if st1.Incumbent == nil || st2.Incumbent == nil || *st1.Incumbent != *st2.Incumbent {
		t.Fatalf("entry peers disagree on the incumbent: %+v vs %+v", st1.Incumbent, st2.Incumbent)
	}

	// And the full result documents and trajectories are byte-identical.
	res1, code1 := getBytes(t, fleet.Peers[0].URL+"/v1/searches/"+st1.ID+"/result")
	res2, code2 := getBytes(t, fleet.Peers[1].URL+"/v1/searches/"+st2.ID+"/result")
	if code1 != http.StatusOK || code2 != http.StatusOK || !bytes.Equal(res1, res2) {
		t.Fatalf("results differ across entry peers (%d, %d):\n%s\nvs\n%s", code1, code2, res1, res2)
	}
	traj1, _ := getBytes(t, fleet.Peers[0].URL+"/v1/searches/"+st1.ID+"/result?csv=trajectory")
	traj2, _ := getBytes(t, fleet.Peers[1].URL+"/v1/searches/"+st2.ID+"/result?csv=trajectory")
	if !bytes.Equal(traj1, traj2) {
		t.Fatalf("trajectories differ across entry peers:\n%s\nvs\n%s", traj1, traj2)
	}
}
