//go:build race

package service_test

// raceEnabled reports whether the race detector is compiled in. The
// shipped-scenario parity test drops its heaviest specs under -race:
// the detector's 5-10x slowdown on simulation compute would push the
// package past CI's test timeout, and those specs' ring parity is
// still proven by the plain `go test ./...` tier and the ring-smoke CI
// job.
const raceEnabled = true
