package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineMoments(t *testing.T) {
	var o Online
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !almost(o.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", o.Mean())
	}
	// sample variance of the classic dataset: population var 4, n/(n-1)*4
	if !almost(o.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineSingle(t *testing.T) {
	var o Online
	o.Add(3)
	if o.Var() != 0 || o.Mean() != 3 || o.Min() != 3 || o.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		mean := MeanOf(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(mean))
		return almost(o.Mean(), mean, 1e-8*scale) && almost(o.Var(), v, 1e-6*math.Max(1, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, x := range []float64{1, 2, 3, 4} {
		c.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if q := c.Quantile(0.5); q < 50 || q > 52 {
		t.Fatalf("median = %v", q)
	}
	if q := c.Quantile(1); q != 100 {
		t.Fatalf("max quantile = %v", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("min quantile = %v", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF quantile not NaN")
	}
	if c.Points(10) != nil {
		t.Fatal("empty CDF points not nil")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var c CDF
		n := 0
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				c.Add(x)
				n++
			}
		}
		if n == 0 {
			return true
		}
		pts := c.Points(16)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
				return false
			}
		}
		return len(pts) > 0 && almost(pts[len(pts)-1].Y, 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAtIsProbability(t *testing.T) {
	var c CDF
	for i := 0; i < 57; i++ {
		c.Add(float64(i * i % 13))
	}
	f := func(x float64) bool {
		p := c.At(x)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeBinsRates(t *testing.T) {
	tb := NewTimeBins(1.0)
	tb.Add(0.2, 100) // bin 0
	tb.Add(0.7, 100) // bin 0
	tb.Add(1.5, 300) // bin 1
	pts := tb.Rates()
	if len(pts) != 2 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Y != 200 || pts[1].Y != 300 {
		t.Fatalf("rates = %v", pts)
	}
	if pts[0].X != 1 || pts[1].X != 2 {
		t.Fatalf("xs = %v", pts)
	}
}

func TestTimeBinsMeansAndSums(t *testing.T) {
	tb := NewTimeBins(2.0)
	tb.Add(0, 10)
	tb.Add(1.9, 20)
	tb.Add(2.0, 6)
	if got := tb.Sums(); got[0].Y != 30 || got[1].Y != 6 {
		t.Fatalf("sums = %v", got)
	}
	if got := tb.Means(); got[0].Y != 15 || got[1].Y != 6 {
		t.Fatalf("means = %v", got)
	}
}

func TestTimeBinsNegativeIgnored(t *testing.T) {
	tb := NewTimeBins(1)
	tb.Add(-0.5, 99)
	if len(tb.Sums()) != 0 {
		t.Fatal("negative time not ignored")
	}
}

func TestSizeBinsCurve(t *testing.T) {
	sb := NewSizeBins(10)
	sb.Add(5, 1.0)  // bin 0
	sb.Add(7, 3.0)  // bin 0
	sb.Add(25, 8.0) // bin 2
	pts := sb.Curve()
	if len(pts) != 2 {
		t.Fatalf("curve = %v", pts)
	}
	if pts[0].X != 5 || pts[0].Y != 2 {
		t.Fatalf("bin0 = %v", pts[0])
	}
	if pts[1].X != 25 || pts[1].Y != 8 {
		t.Fatalf("bin2 = %v", pts[1])
	}
}

func TestSizeBinsSortedX(t *testing.T) {
	sb := NewSizeBins(1)
	for _, x := range []float64{9, 1, 5, 3, 7, 2} {
		sb.Add(x, x)
	}
	pts := sb.Curve()
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Fatalf("curve not sorted: %v", pts)
	}
}

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{1, 1, 1, 1}); !almost(f, 1, 1e-12) {
		t.Fatalf("equal shares fairness = %v", f)
	}
	if f := JainFairness([]float64{1, 0, 0, 0}); !almost(f, 0.25, 1e-12) {
		t.Fatalf("single-winner fairness = %v", f)
	}
	if !math.IsNaN(JainFairness(nil)) {
		t.Fatal("empty fairness not NaN")
	}
}

func TestJainFairnessRange(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0)
		for _, x := range raw {
			if x > 0 && x < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		j := JainFairness(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanOf(t *testing.T) {
	if !almost(MeanOf([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("MeanOf wrong")
	}
	if !math.IsNaN(MeanOf(nil)) {
		t.Fatal("MeanOf(nil) not NaN")
	}
}

func TestCDFPointsSubsampling(t *testing.T) {
	var c CDF
	for i := 0; i < 1000; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[9].Y != 1 {
		t.Fatalf("last point y = %v", pts[9].Y)
	}
	// negative n returns every sample
	if got := c.Points(-1); len(got) != 1000 {
		t.Fatalf("unsampled points = %d", len(got))
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	var c CDF
	c.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("quantile(2) did not panic")
		}
	}()
	c.Quantile(2)
}

func TestNewTimeBinsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero width accepted")
		}
	}()
	NewTimeBins(0)
}

func TestNewSizeBinsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero width accepted")
		}
	}()
	NewSizeBins(0)
}

func TestOnlineStd(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	want := math.Sqrt(32.0 / 7.0)
	if !almost(o.Std(), want, 1e-12) {
		t.Fatalf("std = %v", o.Std())
	}
}

func TestAggregateSeries(t *testing.T) {
	runs := [][]Series{
		{{Name: "SCDA", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}}},
		{{Name: "SCDA", Points: []Point{{X: 1, Y: 14}, {X: 2, Y: 24}}}},
		{{Name: "SCDA", Points: []Point{{X: 1, Y: 12}, {X: 2, Y: 22}, {X: 3, Y: 30}}}},
	}
	agg := AggregateSeries(runs)
	if len(agg) != 1 || agg[0].Name != "SCDA" {
		t.Fatalf("agg = %+v", agg)
	}
	// truncated to the shortest run (2 points)
	if len(agg[0].Points) != 2 || len(agg[0].YErr) != 2 {
		t.Fatalf("points = %d, yerr = %d", len(agg[0].Points), len(agg[0].YErr))
	}
	if !almost(agg[0].Points[0].Y, 12, 1e-12) || !almost(agg[0].Points[1].Y, 22, 1e-12) {
		t.Fatalf("means = %+v", agg[0].Points)
	}
	if !almost(agg[0].Points[0].X, 1, 1e-12) {
		t.Fatalf("x mean = %v", agg[0].Points[0].X)
	}
	// 95% CI of {10,14,12}: 1.96 * 2/sqrt(3)
	want := 1.96 * 2 / math.Sqrt(3)
	if !almost(agg[0].YErr[0], want, 1e-12) {
		t.Fatalf("yerr = %v, want %v", agg[0].YErr[0], want)
	}
	if AggregateSeries(nil) != nil {
		t.Fatal("empty input should aggregate to nil")
	}
}

func TestAggregateSeriesSingleRun(t *testing.T) {
	runs := [][]Series{{{Name: "A", Points: []Point{{X: 1, Y: 5}}}}}
	agg := AggregateSeries(runs)
	if agg[0].Points[0].Y != 5 || agg[0].YErr[0] != 0 {
		t.Fatalf("single-run aggregate = %+v", agg[0])
	}
}

func TestMeanCI(t *testing.T) {
	mean, ci := MeanCI([]float64{10, 14, 12})
	if !almost(mean, 12, 1e-12) || !almost(ci, 1.96*2/math.Sqrt(3), 1e-12) {
		t.Fatalf("mean=%v ci=%v", mean, ci)
	}
	if _, ci := MeanCI([]float64{7}); ci != 0 {
		t.Fatalf("single observation CI = %v", ci)
	}
}
