// Package stats provides the statistical reductions used by the SCDA
// experiment harness: online moments, empirical CDFs, quantiles, time-binned
// throughput series, and the AFCT-by-file-size binning the paper's figures
// use (figs. 8-16, 18 are CDFs and AFCT-vs-size curves; figs. 7, 10, 17 are
// time series of average instantaneous throughput).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates mean and variance in one pass (Welford's algorithm).
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the observation count.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for no observations).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 if none).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if none).
func (o *Online) Max() float64 { return o.max }

// CDF is an empirical cumulative distribution over collected samples.
type CDF struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.xs = append(c.xs, x)
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.xs) }

func (c *CDF) sortIfNeeded() {
	if !c.sorted {
		sort.Float64s(c.xs)
		c.sorted = true
	}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sortIfNeeded()
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-th quantile, q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	c.sortIfNeeded()
	if q == 1 {
		return c.xs[len(c.xs)-1]
	}
	i := int(q * float64(len(c.xs)))
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range c.xs {
		s += x
	}
	return s / float64(len(c.xs))
}

// Points returns up to n evenly spaced (x, P(X<=x)) points for plotting the
// CDF curve, in ascending x. With n <= 0 every distinct sample is returned.
func (c *CDF) Points(n int) []Point {
	c.sortIfNeeded()
	m := len(c.xs)
	if m == 0 {
		return nil
	}
	if n <= 0 || n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * m / n
		if idx > m {
			idx = m
		}
		pts = append(pts, Point{X: c.xs[idx-1], Y: float64(idx) / float64(m)})
	}
	return pts
}

// Point is a generic (x, y) series sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, the unit of figure output.
type Series struct {
	Name   string
	Points []Point
	// YErr, when non-nil, holds one 95% confidence-interval half-width per
	// point (aligned with Points), produced by aggregating replicate runs.
	YErr []float64
}

// ci95HalfWidth returns the normal-approximation 95% confidence-interval
// half-width of the mean: 1.96 · s/√n (0 for fewer than two observations).
func ci95HalfWidth(o *Online) float64 {
	if o.N() < 2 {
		return 0
	}
	return 1.96 * o.Std() / math.Sqrt(float64(o.N()))
}

// AggregateSeries reduces replicate runs of the same figure — one []Series
// per seed, all with the same series in the same order — to a single set of
// mean curves with 95% CI error bars. Point i of series s averages point i
// across the runs (x is averaged too, since sample-driven grids such as CDF
// abscissae shift with the seed); each series is truncated to the shortest
// point count observed for it. Runs may omit trailing series; series index
// s aggregates over the runs that have it. An empty input returns nil.
func AggregateSeries(runs [][]Series) []Series {
	if len(runs) == 0 {
		return nil
	}
	nSeries := 0
	for _, run := range runs {
		if len(run) > nSeries {
			nSeries = len(run)
		}
	}
	out := make([]Series, 0, nSeries)
	for s := 0; s < nSeries; s++ {
		var name string
		nPts := -1
		for _, run := range runs {
			if s >= len(run) {
				continue
			}
			if name == "" {
				name = run[s].Name
			}
			if nPts < 0 || len(run[s].Points) < nPts {
				nPts = len(run[s].Points)
			}
		}
		if nPts < 0 {
			nPts = 0
		}
		agg := Series{Name: name, Points: make([]Point, nPts), YErr: make([]float64, nPts)}
		for i := 0; i < nPts; i++ {
			var xs, ys Online
			for _, run := range runs {
				if s >= len(run) {
					continue
				}
				xs.Add(run[s].Points[i].X)
				ys.Add(run[s].Points[i].Y)
			}
			agg.Points[i] = Point{X: xs.Mean(), Y: ys.Mean()}
			agg.YErr[i] = ci95HalfWidth(&ys)
		}
		out = append(out, agg)
	}
	return out
}

// MeanCI reduces replicate observations to (mean, 95% CI half-width).
func MeanCI(xs []float64) (mean, ci float64) {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Mean(), ci95HalfWidth(&o)
}

// TimeBins accumulates per-bin sums over simulation time: used for the
// "average instantaneous throughput" time series (total bits delivered in a
// bin divided by bin width and by the number of active flows).
type TimeBins struct {
	width  float64
	sums   []float64
	counts []int
}

// NewTimeBins creates bins of the given width in seconds.
func NewTimeBins(width float64) *TimeBins {
	if width <= 0 {
		panic("stats: TimeBins width must be positive")
	}
	return &TimeBins{width: width}
}

// Width returns the bin width in seconds.
func (tb *TimeBins) Width() float64 { return tb.width }

func (tb *TimeBins) grow(i int) {
	for len(tb.sums) <= i {
		tb.sums = append(tb.sums, 0)
		tb.counts = append(tb.counts, 0)
	}
}

// Add accumulates value v at time t.
func (tb *TimeBins) Add(t, v float64) {
	if t < 0 {
		return
	}
	i := int(t / tb.width)
	tb.grow(i)
	tb.sums[i] += v
	tb.counts[i]++
}

// Sums returns one point per bin: (bin end time, bin sum).
func (tb *TimeBins) Sums() []Point {
	pts := make([]Point, len(tb.sums))
	for i := range tb.sums {
		pts[i] = Point{X: float64(i+1) * tb.width, Y: tb.sums[i]}
	}
	return pts
}

// Means returns one point per bin: (bin end time, bin mean). Empty bins
// yield 0.
func (tb *TimeBins) Means() []Point {
	pts := make([]Point, len(tb.sums))
	for i := range tb.sums {
		y := 0.0
		if tb.counts[i] > 0 {
			y = tb.sums[i] / float64(tb.counts[i])
		}
		pts[i] = Point{X: float64(i+1) * tb.width, Y: y}
	}
	return pts
}

// Rates returns one point per bin: (bin end time, bin sum / bin width).
// Feeding bits delivered yields bits/sec.
func (tb *TimeBins) Rates() []Point {
	pts := make([]Point, len(tb.sums))
	for i := range tb.sums {
		pts[i] = Point{X: float64(i+1) * tb.width, Y: tb.sums[i] / tb.width}
	}
	return pts
}

// SizeBins computes mean-Y-per-X-bin curves, the paper's AFCT-vs-file-size
// reduction: "AFCT of flows of some size is obtained by taking the average
// completion times of all flows with that size".
type SizeBins struct {
	width float64
	agg   map[int]*Online
}

// NewSizeBins creates size bins of the given width (e.g. 1MB buckets for
// fig. 9, 500KB buckets for fig. 13).
func NewSizeBins(width float64) *SizeBins {
	if width <= 0 {
		panic("stats: SizeBins width must be positive")
	}
	return &SizeBins{width: width, agg: make(map[int]*Online)}
}

// Add records observation y (e.g. FCT) for key x (e.g. file size).
func (sb *SizeBins) Add(x, y float64) {
	i := int(x / sb.width)
	o := sb.agg[i]
	if o == nil {
		o = &Online{}
		sb.agg[i] = o
	}
	o.Add(y)
}

// Curve returns (bin centre, mean y) points in ascending x.
func (sb *SizeBins) Curve() []Point {
	keys := make([]int, 0, len(sb.agg))
	for k := range sb.agg {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	pts := make([]Point, 0, len(keys))
	for _, k := range keys {
		pts = append(pts, Point{
			X: (float64(k) + 0.5) * sb.width,
			Y: sb.agg[k].Mean(),
		})
	}
	return pts
}

// MeanOf returns the mean of a slice (NaN when empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// JainFairness returns Jain's fairness index of the values:
// (Σx)² / (n·Σx²). 1.0 means perfectly equal; 1/n means one value
// dominates. Used to validate the max-min property of the SCDA allocator.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return math.NaN()
	}
	return s * s / (float64(len(xs)) * s2)
}
