package dfs

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/content"
	"repro/internal/topology"
)

func newFES(t *testing.T, nns int, servers int) *FES {
	t.Helper()
	f, err := New(nns, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < servers; i++ {
		if err := f.AddBlockServer(NewBlockServer(topology.NodeID(100+i), 1<<30)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("0 NNS accepted")
	}
	if _, err := New(1, 0); err == nil {
		t.Fatal("0 block size accepted")
	}
}

func TestRoutingStableAndBalanced(t *testing.T) {
	f := newFES(t, 4, 0)
	counts := make(map[int]int)
	for i := 0; i < 4000; i++ {
		id := content.ID(fmt.Sprintf("content-%d", i))
		a := f.Route(id)
		b := f.Route(id)
		if a != b {
			t.Fatal("routing not stable")
		}
		counts[a.Index]++
	}
	for i := 0; i < 4; i++ {
		if counts[i] < 700 || counts[i] > 1300 {
			t.Fatalf("NNS %d got %d/4000 contents: hash imbalanced", i, counts[i])
		}
	}
}

func TestRouteViaForwards(t *testing.T) {
	f := newFES(t, 4, 0)
	id := content.ID("some-content")
	owner := f.Route(id)
	other := (owner.Index + 1) % 4
	got := f.RouteVia(other, id)
	if got != owner {
		t.Fatal("RouteVia returned wrong owner")
	}
	if f.NNS(other).Forwarded != 1 {
		t.Fatal("forward not counted")
	}
	// arriving at the owner forwards nothing
	f.RouteVia(owner.Index, id)
	if f.NNS(owner.Index).Forwarded != 0 {
		t.Fatal("self-route counted as forward")
	}
}

func TestSplitBlocks(t *testing.T) {
	f := newFES(t, 1, 0)
	cases := []struct {
		size int64
		want []int64
	}{
		{0, nil},
		{100, []int64{100}},
		{2 << 20, []int64{2 << 20}},
		{(2 << 20) + 1, []int64{2 << 20, 1}},
		{5 << 20, []int64{2 << 20, 2 << 20, 1 << 20}},
	}
	for _, c := range cases {
		got := f.SplitBlocks(c.size)
		if len(got) != len(c.want) {
			t.Fatalf("SplitBlocks(%d) = %v", c.size, got)
		}
		var sum int64
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitBlocks(%d) = %v, want %v", c.size, got, c.want)
			}
			sum += got[i]
		}
		if sum != c.size {
			t.Fatalf("blocks of %d sum to %d", c.size, sum)
		}
	}
}

func TestCreateLookup(t *testing.T) {
	f := newFES(t, 3, 3)
	info := content.Info{ID: "movie", Size: 5 << 20, Declared: content.SemiInteractive}
	placements := []topology.NodeID{100, 101, 100}
	m, err := f.Create(info, placements)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(m.Blocks))
	}
	if m.TotalSize() != info.Size {
		t.Fatalf("total size = %d", m.TotalSize())
	}
	got, err := f.Lookup("movie")
	if err != nil || got != m {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := f.Lookup("ghost"); err == nil {
		t.Fatal("missing content found")
	}
	// space reserved
	if f.BlockServer(100).Used != 3<<20 {
		t.Fatalf("bs100 used = %d", f.BlockServer(100).Used)
	}
	if f.BlockServer(100).NumBlocks() != 2 {
		t.Fatalf("bs100 blocks = %d", f.BlockServer(100).NumBlocks())
	}
}

func TestCreateErrors(t *testing.T) {
	f := newFES(t, 1, 2)
	info := content.Info{ID: "x", Size: 3 << 20}
	if _, err := f.Create(info, []topology.NodeID{100}); err == nil {
		t.Fatal("wrong placement count accepted")
	}
	if _, err := f.Create(info, []topology.NodeID{100, 999}); err == nil {
		t.Fatal("unknown server accepted")
	}
	if _, err := f.Create(info, []topology.NodeID{100, 101}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(info, []topology.NodeID{100, 101}); err == nil {
		t.Fatal("duplicate content accepted")
	}
}

func TestCreateRollbackOnFullServer(t *testing.T) {
	f, _ := New(1, 1<<20)
	f.AddBlockServer(NewBlockServer(100, 10<<20))
	f.AddBlockServer(NewBlockServer(101, 1<<20))
	// second block lands on the tiny server twice: second Store must fail
	// and the first block's reservation must roll back
	info := content.Info{ID: "big", Size: 3 << 20}
	_, err := f.Create(info, []topology.NodeID{100, 101, 101})
	if err == nil {
		t.Fatal("overflow accepted")
	}
	if f.BlockServer(100).Used != 0 || f.BlockServer(101).Used != 0 {
		t.Fatalf("rollback failed: used = %d/%d",
			f.BlockServer(100).Used, f.BlockServer(101).Used)
	}
}

func TestReplicaLifecycle(t *testing.T) {
	f := newFES(t, 2, 3)
	info := content.Info{ID: "doc", Size: 1000}
	if _, err := f.Create(info, []topology.NodeID{100}); err != nil {
		t.Fatal(err)
	}
	b := BlockID{Content: "doc", Index: 0}
	if err := f.AddReplica(b, 101); err != nil {
		t.Fatal(err)
	}
	if err := f.AddReplica(b, 101); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if err := f.AddReplica(BlockID{Content: "doc", Index: 5}, 102); err == nil {
		t.Fatal("bad index accepted")
	}
	m, _ := f.Lookup("doc")
	if len(m.Blocks[0].Replicas) != 2 {
		t.Fatalf("replicas = %v", m.Blocks[0].Replicas)
	}
	if err := f.RemoveReplica(b, 100); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveReplica(b, 101); err == nil {
		t.Fatal("dropped the last replica")
	}
	if f.BlockServer(100).Used != 0 {
		t.Fatal("removed replica space not released")
	}
}

func TestBlockServerAccounting(t *testing.T) {
	bs := NewBlockServer(1, 1000)
	if err := bs.Store(BlockID{"a", 0}, 600); err != nil {
		t.Fatal(err)
	}
	if bs.CanStore(500) {
		t.Fatal("overfull CanStore true")
	}
	if err := bs.Store(BlockID{"b", 0}, 500); err == nil {
		t.Fatal("overflow accepted")
	}
	if err := bs.Store(BlockID{"a", 0}, 100); err == nil {
		t.Fatal("duplicate block accepted")
	}
	bs.Drop(BlockID{"a", 0}, 600)
	if bs.Used != 0 || bs.Has(BlockID{"a", 0}) {
		t.Fatal("drop failed")
	}
	bs.Drop(BlockID{"zz", 0}, 100) // unknown drop is a no-op
	if bs.Used != 0 {
		t.Fatal("unknown drop changed accounting")
	}
}

func TestMarkReadAndLoad(t *testing.T) {
	f := newFES(t, 2, 2)
	f.Create(content.Info{ID: "c", Size: 10}, []topology.NodeID{100})
	f.MarkRead(BlockID{"c", 0}, 100)
	if f.BlockServer(100).Reads != 1 {
		t.Fatal("read not counted")
	}
	loads := f.LoadByNNS()
	var total int64
	for _, l := range loads {
		total += l
	}
	if total == 0 {
		t.Fatal("no NNS load recorded")
	}
}

func TestContentsSorted(t *testing.T) {
	f := newFES(t, 3, 1)
	for _, id := range []content.ID{"zebra", "alpha", "mid"} {
		f.Create(content.Info{ID: id, Size: 10}, []topology.NodeID{100})
	}
	ids := f.Contents()
	if len(ids) != 3 || ids[0] != "alpha" || ids[2] != "zebra" {
		t.Fatalf("Contents = %v", ids)
	}
}

func TestMultiNNSSpreadsLoad(t *testing.T) {
	// the paper's headline DFS claim: K name nodes each see ~1/K of the
	// metadata requests a single NNS would absorb
	f := newFES(t, 4, 4)
	for i := 0; i < 2000; i++ {
		id := content.ID(fmt.Sprintf("c%d", i))
		if _, err := f.Create(content.Info{ID: id, Size: 100}, []topology.NodeID{topology.NodeID(100 + i%4)}); err != nil {
			t.Fatal(err)
		}
	}
	loads := f.LoadByNNS()
	for i, l := range loads {
		if l < 300 || l > 800 {
			t.Fatalf("NNS %d load %d far from 500 (total 2000 over 4)", i, l)
		}
	}
}

func TestHashDeterministicProperty(t *testing.T) {
	f := func(s string) bool { return Hash(s) == Hash(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitBlocksSumProperty(t *testing.T) {
	f := newFES(t, 1, 0)
	prop := func(raw uint32) bool {
		size := int64(raw % (50 << 20))
		blocks := f.SplitBlocks(size)
		var sum int64
		for _, b := range blocks {
			if b <= 0 || b > f.BlockSize {
				return false
			}
			sum += b
		}
		return sum == size
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
