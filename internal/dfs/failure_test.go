package dfs

import (
	"testing"

	"repro/internal/content"
	"repro/internal/topology"
)

func TestFailServerReturnsOrphans(t *testing.T) {
	f := newFES(t, 2, 3)
	// two contents: one replicated, one single-copy on the victim
	if _, err := f.Create(content.Info{ID: "safe", Size: 1000}, []topology.NodeID{100}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddReplica(BlockID{"safe", 0}, 101); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(content.Info{ID: "fragile", Size: 2000}, []topology.NodeID{100}); err != nil {
		t.Fatal(err)
	}

	orphans, err := f.FailServer(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 2 {
		t.Fatalf("orphans = %d, want 2", len(orphans))
	}
	byID := map[content.ID]Orphan{}
	for _, o := range orphans {
		byID[o.ID.Content] = o
	}
	if got := byID["safe"].Survivors; len(got) != 1 || got[0] != 101 {
		t.Fatalf("safe survivors = %v", got)
	}
	if got := byID["fragile"].Survivors; len(got) != 0 {
		t.Fatalf("fragile survivors = %v, want none", got)
	}
	// the victim's accounting is cleared
	if f.BlockServer(100).Used != 0 || f.BlockServer(100).NumBlocks() != 0 {
		t.Fatal("failed server accounting not cleared")
	}
	// metadata no longer references the victim
	m, _ := f.Lookup("safe")
	for _, r := range m.Blocks[0].Replicas {
		if r == 100 {
			t.Fatal("metadata still references failed server")
		}
	}
}

func TestFailServerUnknown(t *testing.T) {
	f := newFES(t, 1, 1)
	if _, err := f.FailServer(999); err == nil {
		t.Fatal("unknown server accepted")
	}
}

func TestFailServerIdempotentOnEmpty(t *testing.T) {
	f := newFES(t, 1, 2)
	orphans, err := f.FailServer(101)
	if err != nil || len(orphans) != 0 {
		t.Fatalf("empty-server failure: %v %v", orphans, err)
	}
}
