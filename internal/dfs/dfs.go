// Package dfs implements SCDA's distributed-file-system substrate
// (section III-A): a light-weight front-end server (FES) that hashes
// requests across multiple name node servers (NNS), each holding the
// metadata for a partition of the content namespace, backed by block
// servers (BS) that store the data blocks.
//
// This is the paper's first headline feature: unlike GFS and HDFS, which
// route all metadata through a single name node ("potentially ... a
// bottleneck resource and single point of failure"), SCDA spreads metadata
// over NNNS name nodes with the FES doing stateless hash routing:
// nns = hash(ID) mod NNNS. A request arriving at the wrong NNS is hashed
// and forwarded to the owner (section III-A's NNS-assisted forwarding);
// the forwarding counters let experiments quantify the cost.
package dfs

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/content"
	"repro/internal/topology"
)

// BlockID identifies one stored block.
type BlockID struct {
	Content content.ID
	Index   int
}

// String renders the block ID as content/index.
func (b BlockID) String() string { return fmt.Sprintf("%s/%d", b.Content, b.Index) }

// Block is the metadata for one block of a content.
type Block struct {
	ID   BlockID
	Size int64
	// Replicas lists the block servers holding a copy, in placement order
	// (first is the primary the client wrote to).
	Replicas []topology.NodeID
}

// Meta is the per-content metadata an NNS keeps.
type Meta struct {
	Info   content.Info
	Blocks []Block
}

// TotalSize sums block sizes.
func (m *Meta) TotalSize() int64 {
	var t int64
	for _, b := range m.Blocks {
		t += b.Size
	}
	return t
}

// BlockServer is the metadata-side view of one BS: capacity accounting and
// access counters (the data path lives in the cluster simulation).
type BlockServer struct {
	Node     topology.NodeID
	Capacity int64
	Used     int64
	blocks   map[BlockID]bool

	// Writes and Reads count block-level accesses, feeding the
	// popularity counters of section VII-C.
	Writes int64
	Reads  int64
}

// NewBlockServer creates a BS with the given storage capacity in bytes.
func NewBlockServer(node topology.NodeID, capacity int64) *BlockServer {
	if capacity <= 0 {
		panic("dfs: block server capacity must be positive")
	}
	return &BlockServer{Node: node, Capacity: capacity, blocks: make(map[BlockID]bool)}
}

// CanStore reports whether size more bytes fit.
func (bs *BlockServer) CanStore(size int64) bool { return bs.Used+size <= bs.Capacity }

// Store reserves space for a block; it errors when full (the "server may
// not have enough disk space" condition of section IV).
func (bs *BlockServer) Store(id BlockID, size int64) error {
	if bs.blocks[id] {
		return fmt.Errorf("dfs: %v already on server %d", id, bs.Node)
	}
	if !bs.CanStore(size) {
		return fmt.Errorf("dfs: server %d full (%d/%d + %d)", bs.Node, bs.Used, bs.Capacity, size)
	}
	bs.blocks[id] = true
	bs.Used += size
	bs.Writes++
	return nil
}

// Drop releases a block's space (migration away, deletion).
func (bs *BlockServer) Drop(id BlockID, size int64) {
	if bs.blocks[id] {
		delete(bs.blocks, id)
		bs.Used -= size
	}
}

// Has reports whether the server holds the block.
func (bs *BlockServer) Has(id BlockID) bool { return bs.blocks[id] }

// NumBlocks returns the number of stored blocks.
func (bs *BlockServer) NumBlocks() int { return len(bs.blocks) }

// NameNode holds the metadata partition for contents hashed to it.
type NameNode struct {
	Index int
	meta  map[content.ID]*Meta

	// Requests counts metadata operations served here (the load metric
	// for the single-vs-multiple NNS ablation); Forwarded counts requests
	// that arrived here but belonged to another NNS.
	Requests  int64
	Forwarded int64
}

// NumContents returns the number of contents in this partition.
func (n *NameNode) NumContents() int { return len(n.meta) }

// FES is the front-end server plus the name-node set: the metadata plane.
type FES struct {
	nns    []*NameNode
	blocks map[topology.NodeID]*BlockServer
	// BlockSize splits contents into blocks (GFS-style chunks).
	BlockSize int64
}

// Hash is the stateless routing hash (FNV-1a over the ID).
func Hash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// New creates a FES with numNNS name nodes. The paper's default cloud uses
// several; numNNS = 1 reproduces the GFS/HDFS single-name-node baseline.
func New(numNNS int, blockSize int64) (*FES, error) {
	if numNNS <= 0 {
		return nil, fmt.Errorf("dfs: numNNS = %d", numNNS)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("dfs: blockSize = %d", blockSize)
	}
	f := &FES{
		nns:       make([]*NameNode, numNNS),
		blocks:    make(map[topology.NodeID]*BlockServer),
		BlockSize: blockSize,
	}
	for i := range f.nns {
		f.nns[i] = &NameNode{Index: i, meta: make(map[content.ID]*Meta)}
	}
	return f, nil
}

// AddBlockServer registers a BS.
func (f *FES) AddBlockServer(bs *BlockServer) error {
	if _, dup := f.blocks[bs.Node]; dup {
		return fmt.Errorf("dfs: block server %d already registered", bs.Node)
	}
	f.blocks[bs.Node] = bs
	return nil
}

// BlockServer returns the BS at a node, or nil.
func (f *FES) BlockServer(node topology.NodeID) *BlockServer { return f.blocks[node] }

// NumNNS returns the name-node count.
func (f *FES) NumNNS() int { return len(f.nns) }

// NNS returns name node i.
func (f *FES) NNS(i int) *NameNode { return f.nns[i] }

// Route returns the owning NNS for a content ID: the FES's
// hash(ID) mod NNNS dispatch of section VIII-A step 2.
func (f *FES) Route(id content.ID) *NameNode {
	return f.nns[Hash(string(id))%uint64(len(f.nns))]
}

// RouteVia models a request arriving at an arbitrary NNS (the paper's
// FES-agent-on-NNS deployment): if the receiving NNS is not the owner it
// forwards, incrementing its Forwarded counter, and returns the owner.
func (f *FES) RouteVia(receiving int, id content.ID) *NameNode {
	owner := f.Route(id)
	rcv := f.nns[receiving%len(f.nns)]
	if owner != rcv {
		rcv.Forwarded++
	}
	return owner
}

// SplitBlocks returns the block sizes for a content of the given size.
func (f *FES) SplitBlocks(size int64) []int64 {
	if size <= 0 {
		return nil
	}
	var out []int64
	for size > f.BlockSize {
		out = append(out, f.BlockSize)
		size -= f.BlockSize
	}
	return append(out, size)
}

// Create registers a new content with block placement already chosen by
// the caller (the selection layer): placements[i] is the primary BS for
// block i. Space is reserved on every primary.
func (f *FES) Create(info content.Info, placements []topology.NodeID) (*Meta, error) {
	sizes := f.SplitBlocks(info.Size)
	if len(sizes) != len(placements) {
		return nil, fmt.Errorf("dfs: %d placements for %d blocks", len(placements), len(sizes))
	}
	nn := f.Route(info.ID)
	nn.Requests++
	if _, dup := nn.meta[info.ID]; dup {
		return nil, fmt.Errorf("dfs: content %s already exists", info.ID)
	}
	m := &Meta{Info: info}
	rollback := func(upTo int) {
		for j := 0; j < upTo; j++ {
			f.blocks[placements[j]].Drop(BlockID{Content: info.ID, Index: j}, sizes[j])
		}
	}
	for i, sz := range sizes {
		bs := f.blocks[placements[i]]
		if bs == nil {
			rollback(i)
			return nil, fmt.Errorf("dfs: placement %d is not a block server", placements[i])
		}
		id := BlockID{Content: info.ID, Index: i}
		if err := bs.Store(id, sz); err != nil {
			rollback(i)
			return nil, err
		}
		m.Blocks = append(m.Blocks, Block{ID: id, Size: sz, Replicas: []topology.NodeID{placements[i]}})
	}
	nn.meta[info.ID] = m
	return m, nil
}

// Lookup returns a content's metadata via its owning NNS.
func (f *FES) Lookup(id content.ID) (*Meta, error) {
	nn := f.Route(id)
	nn.Requests++
	m, ok := nn.meta[id]
	if !ok {
		return nil, fmt.Errorf("dfs: content %s not found", id)
	}
	return m, nil
}

// AddReplica records a new replica of a block on a BS, reserving space.
func (f *FES) AddReplica(id BlockID, server topology.NodeID) error {
	nn := f.Route(id.Content)
	nn.Requests++
	m, ok := nn.meta[id.Content]
	if !ok {
		return fmt.Errorf("dfs: content %s not found", id.Content)
	}
	if id.Index < 0 || id.Index >= len(m.Blocks) {
		return fmt.Errorf("dfs: block index %d out of range", id.Index)
	}
	b := &m.Blocks[id.Index]
	for _, r := range b.Replicas {
		if r == server {
			return fmt.Errorf("dfs: %v already replicated on %d", id, server)
		}
	}
	bs := f.blocks[server]
	if bs == nil {
		return fmt.Errorf("dfs: %d is not a block server", server)
	}
	if err := bs.Store(id, b.Size); err != nil {
		return err
	}
	b.Replicas = append(b.Replicas, server)
	return nil
}

// RemoveReplica drops a replica (migration away), keeping at least one.
func (f *FES) RemoveReplica(id BlockID, server topology.NodeID) error {
	nn := f.Route(id.Content)
	nn.Requests++
	m, ok := nn.meta[id.Content]
	if !ok {
		return fmt.Errorf("dfs: content %s not found", id.Content)
	}
	b := &m.Blocks[id.Index]
	if len(b.Replicas) <= 1 {
		return fmt.Errorf("dfs: refusing to drop the last replica of %v", id)
	}
	for i, r := range b.Replicas {
		if r == server {
			b.Replicas = append(b.Replicas[:i], b.Replicas[i+1:]...)
			f.blocks[server].Drop(id, b.Size)
			return nil
		}
	}
	return fmt.Errorf("dfs: %v has no replica on %d", id, server)
}

// MarkRead bumps read counters on the chosen replica's server.
func (f *FES) MarkRead(id BlockID, server topology.NodeID) {
	if bs := f.blocks[server]; bs != nil {
		bs.Reads++
	}
}

// LoadByNNS returns request counts per name node, sorted by index — the
// balance diagnostic for the multiple-NNS feature.
func (f *FES) LoadByNNS() []int64 {
	out := make([]int64, len(f.nns))
	for i, nn := range f.nns {
		out[i] = nn.Requests
	}
	return out
}

// Contents lists all content IDs across partitions (sorted, for
// deterministic iteration in experiments).
func (f *FES) Contents() []content.ID {
	var ids []content.ID
	for _, nn := range f.nns {
		for id := range nn.meta {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
