package dfs

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Orphan describes a block that lost a replica to a server failure.
type Orphan struct {
	ID   BlockID
	Size int64
	// Survivors are the remaining replicas (may be empty — the block is
	// then lost until the client re-uploads).
	Survivors []topology.NodeID
}

// FailServer removes a block server from service: every replica it held is
// dropped from the metadata and returned as an Orphan so the cluster can
// re-replicate from survivors (the failure-monitoring role the paper
// assigns to the RM/RA components in section I). The server's capacity
// accounting is cleared; it stays registered so a later recovery can
// reuse the node.
func (f *FES) FailServer(node topology.NodeID) ([]Orphan, error) {
	bs := f.blocks[node]
	if bs == nil {
		return nil, fmt.Errorf("dfs: %d is not a block server", node)
	}
	var orphans []Orphan
	for _, nn := range f.nns {
		for _, m := range nn.meta {
			for i := range m.Blocks {
				b := &m.Blocks[i]
				idx := -1
				for j, r := range b.Replicas {
					if r == node {
						idx = j
						break
					}
				}
				if idx < 0 {
					continue
				}
				b.Replicas = append(b.Replicas[:idx], b.Replicas[idx+1:]...)
				survivors := make([]topology.NodeID, len(b.Replicas))
				copy(survivors, b.Replicas)
				orphans = append(orphans, Orphan{ID: b.ID, Size: b.Size, Survivors: survivors})
			}
		}
	}
	// nn.meta is a map, so orphans accumulate in nondeterministic order;
	// sort so re-replication schedules the same events in the same order
	// every run (seed-determinism contract of the experiment harness).
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i].ID.Content != orphans[j].ID.Content {
			return orphans[i].ID.Content < orphans[j].ID.Content
		}
		return orphans[i].ID.Index < orphans[j].ID.Index
	})
	bs.blocks = make(map[BlockID]bool)
	bs.Used = 0
	return orphans, nil
}
