// Package power models heterogeneous server energy consumption for SCDA's
// power-aware server selection (section VII-D) and the dormant-server
// scale-down of section VII-C.
//
// The paper's heterogeneity sources — "location of a server in a rack or
// room, specifications and age of the server hardware and other
// (processing) tasks" — are modelled as per-server draw parameters; the
// measurement path mirrors the paper's temperature sensors: P(t) = T(t)/τ
// with an optional running average weighting recent samples.
package power

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
)

// State is a server power state.
type State int

const (
	// Active serves traffic at full draw.
	Active State = iota
	// Dormant is the low-power, high-energy-saving inactive mode passive
	// content is consolidated onto.
	Dormant
	// Transitioning covers the wake-up latency window between states.
	Transitioning
)

// String names the power state for logs.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Dormant:
		return "dormant"
	default:
		return "transitioning"
	}
}

// Profile is a server's static power characteristics.
type Profile struct {
	// IdleWatts is the draw of an active but unloaded server.
	IdleWatts float64
	// PeakWatts is the draw at full utilisation.
	PeakWatts float64
	// DormantWatts is the draw in the dormant state.
	DormantWatts float64
	// WakeLatency is the dormant→active transition time in seconds whose
	// avoidance the paper cites as an energy win for passive placement.
	WakeLatency float64
	// CoolingFactor models rack/room position: effective draw is
	// multiplied by it (hot spots cost more cooling energy).
	CoolingFactor float64
}

// DefaultProfile is a commodity 2013-era server.
func DefaultProfile() Profile {
	return Profile{IdleWatts: 150, PeakWatts: 300, DormantWatts: 15, WakeLatency: 2.0, CoolingFactor: 1.0}
}

func (p Profile) validate() error {
	switch {
	case p.IdleWatts <= 0 || p.PeakWatts < p.IdleWatts:
		return fmt.Errorf("power: bad watt range %+v", p)
	case p.DormantWatts < 0 || p.DormantWatts > p.IdleWatts:
		return fmt.Errorf("power: bad dormant watts %+v", p)
	case p.WakeLatency < 0 || p.CoolingFactor <= 0:
		return fmt.Errorf("power: bad latency/cooling %+v", p)
	}
	return nil
}

// HeterogeneousProfile derives a varied profile from a server index and
// RNG: rack position shifts cooling, age shifts peak draw — the paper's
// heterogeneity sources.
func HeterogeneousProfile(rng *sim.RNG) Profile {
	p := DefaultProfile()
	// age: up to +60% peak draw
	age := 1 + 0.6*rng.Float64()
	p.IdleWatts *= age
	p.PeakWatts *= age
	// rack position: ±25% cooling burden
	p.CoolingFactor = 0.75 + 0.5*rng.Float64()
	return p
}

// Server tracks one server's power state and cumulative energy.
type Server struct {
	Node    topology.NodeID
	Profile Profile

	state       State
	wakeUntil   float64
	utilization float64 // 0..1, set by the cluster from link usage

	// measured power running average (the T(t)/τ sensor path)
	avgPower float64
	haveAvg  bool

	energyJ    float64
	lastUpdate float64
}

// Model owns the power state of all servers.
type Model struct {
	servers map[topology.NodeID]*Server
	// order lists servers by registration so that iteration — and the
	// floating-point energy sums reduced over it — is deterministic; map
	// iteration order varies run to run and would perturb totals by ulps.
	order []*Server
	// AvgWeight weights the latest measurement in the running average
	// ("with more weight to the latest power consumption measurement").
	AvgWeight float64
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{servers: make(map[topology.NodeID]*Server), AvgWeight: 0.3}
}

// Add registers a server with a profile. Invalid profiles error.
func (m *Model) Add(node topology.NodeID, p Profile) (*Server, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if _, dup := m.servers[node]; dup {
		return nil, fmt.Errorf("power: server %d already added", node)
	}
	s := &Server{Node: node, Profile: p, state: Active}
	m.servers[node] = s
	m.order = append(m.order, s)
	return s, nil
}

// Get returns a server's power tracker, or nil.
func (m *Model) Get(node topology.NodeID) *Server { return m.servers[node] }

// Each visits all servers in registration order.
func (m *Model) Each(fn func(*Server)) {
	for _, s := range m.order {
		fn(s)
	}
}

// State returns the server's state at time now, resolving transitions.
func (s *Server) State(now float64) State {
	if s.state == Transitioning && now >= s.wakeUntil {
		s.state = Active
	}
	return s.state
}

// SetUtilization records the server's current load fraction (0..1).
func (s *Server) SetUtilization(u float64) {
	s.utilization = math.Max(0, math.Min(1, u))
}

// Utilization returns the recorded load fraction.
func (s *Server) Utilization() float64 { return s.utilization }

// Draw returns instantaneous power draw in watts at time now: linear
// interpolation between idle and peak by utilisation, scaled by cooling,
// or the dormant floor.
func (s *Server) Draw(now float64) float64 {
	switch s.State(now) {
	case Dormant:
		return s.Profile.DormantWatts * s.Profile.CoolingFactor
	case Transitioning:
		// wake-up burns peak draw without serving — the latency cost the
		// paper's passive-content placement avoids
		return s.Profile.PeakWatts * s.Profile.CoolingFactor
	default:
		p := s.Profile.IdleWatts + (s.Profile.PeakWatts-s.Profile.IdleWatts)*s.utilization
		return p * s.Profile.CoolingFactor
	}
}

// Accrue integrates energy up to time now; call it before state changes
// and when sampling.
func (s *Server) Accrue(now float64) {
	if now > s.lastUpdate {
		s.energyJ += s.Draw(now) * (now - s.lastUpdate)
		s.lastUpdate = now
	}
}

// EnergyJoules returns cumulative energy through the last Accrue.
func (s *Server) EnergyJoules() float64 { return s.energyJ }

// Sleep transitions the server to dormant (no-op when already dormant).
func (s *Server) Sleep(now float64) {
	s.Accrue(now)
	s.state = Dormant
}

// Wake starts a dormant server's transition to active; it serves again
// after WakeLatency.
func (s *Server) Wake(now float64) {
	if s.State(now) != Dormant {
		return
	}
	s.Accrue(now)
	s.state = Transitioning
	s.wakeUntil = now + s.Profile.WakeLatency
}

// Measure records a power observation (the sensor path: P = T/τ) into the
// running average and returns the current estimate.
func (s *Server) Measure(m *Model, sample float64) float64 {
	if !s.haveAvg {
		s.avgPower = sample
		s.haveAvg = true
	} else {
		s.avgPower = (1-m.AvgWeight)*s.avgPower + m.AvgWeight*sample
	}
	return s.avgPower
}

// MeasuredPower returns the running-average power estimate used by the
// rate-to-power selection metric R̂/P; before any measurement it falls
// back to the instantaneous draw.
func (s *Server) MeasuredPower(now float64) float64 {
	if s.haveAvg {
		return s.avgPower
	}
	return s.Draw(now)
}

// RateToPower is the section VII-D selection metric R̂/P(t): higher is
// better (more deliverable rate per watt).
func (s *Server) RateToPower(rate, now float64) float64 {
	p := s.MeasuredPower(now)
	if p <= 0 {
		return math.Inf(1)
	}
	return rate / p
}

// TotalEnergy sums accrued energy over all servers (call Accrue first via
// AccrueAll for an up-to-date figure).
func (m *Model) TotalEnergy() float64 {
	t := 0.0
	for _, s := range m.order {
		t += s.energyJ
	}
	return t
}

// AccrueAll integrates all servers to time now.
func (m *Model) AccrueAll(now float64) {
	for _, s := range m.order {
		s.Accrue(now)
	}
}
