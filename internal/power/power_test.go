package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func addServer(t *testing.T, m *Model, node int) *Server {
	t.Helper()
	s, err := m.Add(topology.NodeID(node), DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddAndGet(t *testing.T) {
	m := NewModel()
	s := addServer(t, m, 1)
	if m.Get(1) != s {
		t.Fatal("Get mismatch")
	}
	if m.Get(2) != nil {
		t.Fatal("missing server not nil")
	}
	if _, err := m.Add(1, DefaultProfile()); err == nil {
		t.Fatal("duplicate add accepted")
	}
}

func TestProfileValidation(t *testing.T) {
	m := NewModel()
	bad := []Profile{
		{IdleWatts: 0, PeakWatts: 100, DormantWatts: 5, CoolingFactor: 1},
		{IdleWatts: 200, PeakWatts: 100, DormantWatts: 5, CoolingFactor: 1},
		{IdleWatts: 100, PeakWatts: 200, DormantWatts: 150, CoolingFactor: 1},
		{IdleWatts: 100, PeakWatts: 200, DormantWatts: 5, CoolingFactor: 0},
		{IdleWatts: 100, PeakWatts: 200, DormantWatts: 5, CoolingFactor: 1, WakeLatency: -1},
	}
	for i, p := range bad {
		if _, err := m.Add(topology.NodeID(10+i), p); err == nil {
			t.Errorf("profile %d accepted: %+v", i, p)
		}
	}
}

func TestDrawInterpolation(t *testing.T) {
	m := NewModel()
	s := addServer(t, m, 1)
	s.SetUtilization(0)
	if got := s.Draw(0); got != 150 {
		t.Fatalf("idle draw = %v", got)
	}
	s.SetUtilization(1)
	if got := s.Draw(0); got != 300 {
		t.Fatalf("peak draw = %v", got)
	}
	s.SetUtilization(0.5)
	if got := s.Draw(0); got != 225 {
		t.Fatalf("half draw = %v", got)
	}
	// clamping
	s.SetUtilization(3)
	if s.Utilization() != 1 {
		t.Fatal("utilization not clamped")
	}
}

func TestDormantAndWake(t *testing.T) {
	m := NewModel()
	s := addServer(t, m, 1)
	s.Sleep(10)
	if s.State(10) != Dormant {
		t.Fatal("not dormant")
	}
	if got := s.Draw(10); got != 15 {
		t.Fatalf("dormant draw = %v", got)
	}
	s.Wake(20)
	if s.State(20) != Transitioning {
		t.Fatal("not transitioning")
	}
	// during wake-up the server burns peak power without serving
	if got := s.Draw(20.5); got != 300 {
		t.Fatalf("transition draw = %v", got)
	}
	if s.State(22.1) != Active {
		t.Fatal("not active after wake latency")
	}
	// waking an active server is a no-op
	s.Wake(30)
	if s.State(30) != Active {
		t.Fatal("Wake on active server changed state")
	}
}

func TestEnergyAccrual(t *testing.T) {
	m := NewModel()
	s := addServer(t, m, 1)
	s.SetUtilization(0) // 150 W
	s.Accrue(10)
	if got := s.EnergyJoules(); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("energy = %v, want 1500 J", got)
	}
	s.Sleep(10) // 15 W from now
	s.Accrue(20)
	if got := s.EnergyJoules(); math.Abs(got-1650) > 1e-9 {
		t.Fatalf("energy = %v, want 1650 J", got)
	}
	// accruing into the past is a no-op
	s.Accrue(5)
	if got := s.EnergyJoules(); math.Abs(got-1650) > 1e-9 {
		t.Fatal("past accrual changed energy")
	}
}

func TestDormantSavesEnergy(t *testing.T) {
	m := NewModel()
	active := addServer(t, m, 1)
	dormant := addServer(t, m, 2)
	dormant.Sleep(0)
	m.AccrueAll(3600)
	if dormant.EnergyJoules() >= active.EnergyJoules()/5 {
		t.Fatalf("dormant %v J vs active %v J: insufficient saving",
			dormant.EnergyJoules(), active.EnergyJoules())
	}
	if got := m.TotalEnergy(); math.Abs(got-(active.EnergyJoules()+dormant.EnergyJoules())) > 1e-9 {
		t.Fatal("TotalEnergy mismatch")
	}
}

func TestMeasureRunningAverage(t *testing.T) {
	m := NewModel()
	s := addServer(t, m, 1)
	s.Measure(m, 100)
	if got := s.MeasuredPower(0); got != 100 {
		t.Fatalf("first measurement = %v", got)
	}
	s.Measure(m, 200)
	// 0.7·100 + 0.3·200 = 130
	if got := s.MeasuredPower(0); math.Abs(got-130) > 1e-9 {
		t.Fatalf("averaged = %v, want 130", got)
	}
}

func TestMeasuredPowerFallsBackToDraw(t *testing.T) {
	m := NewModel()
	s := addServer(t, m, 1)
	s.SetUtilization(1)
	if got := s.MeasuredPower(0); got != 300 {
		t.Fatalf("fallback = %v, want instantaneous 300", got)
	}
}

func TestRateToPower(t *testing.T) {
	m := NewModel()
	a := addServer(t, m, 1)
	b := addServer(t, m, 2)
	a.Measure(m, 300) // hot server
	b.Measure(m, 100) // efficient server
	rate := 1e9
	if a.RateToPower(rate, 0) >= b.RateToPower(rate, 0) {
		t.Fatal("efficient server must win R̂/P")
	}
}

func TestHeterogeneousProfiles(t *testing.T) {
	rng := sim.NewRNG(42)
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		p := HeterogeneousProfile(rng)
		if err := p.validate(); err != nil {
			t.Fatalf("generated invalid profile: %v", err)
		}
		seen[p.PeakWatts] = true
	}
	if len(seen) < 10 {
		t.Fatalf("profiles not heterogeneous: %d distinct peaks", len(seen))
	}
}

func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		m := NewModel()
		s, _ := m.Add(1, DefaultProfile())
		now, last := 0.0, 0.0
		for _, st := range steps {
			now += float64(st%10) + 0.1
			s.Accrue(now)
			if s.EnergyJoules() < last {
				return false
			}
			last = s.EnergyJoules()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEachVisitsAll(t *testing.T) {
	m := NewModel()
	for i := 0; i < 5; i++ {
		addServer(t, m, i)
	}
	count := 0
	m.Each(func(*Server) { count++ })
	if count != 5 {
		t.Fatalf("Each visited %d", count)
	}
}
