package content

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Unknown: "unknown", Interactive: "interactive",
		SemiInteractive: "semi-interactive", Passive: "passive",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestEffectiveClassPrecedence(t *testing.T) {
	i := &Info{ID: "x", Declared: Interactive, Learned: Passive}
	if i.Effective() != Interactive {
		t.Fatal("declared class must win")
	}
	i = &Info{ID: "x", Learned: SemiInteractive}
	if i.Effective() != SemiInteractive {
		t.Fatal("learned class must be used when not declared")
	}
	i = &Info{ID: "x"}
	if i.Effective() != Passive {
		t.Fatal("unknown content must default to passive")
	}
}

func TestInteractiveDetection(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	// interleaved reads and writes within 5s, high frequency
	now := 0.0
	for i := 0; i < 12; i++ {
		cl.ObserveWrite("chat", now)
		cl.ObserveRead("chat", now+1)
		now += 3
	}
	if got := cl.Classify("chat", now); got != Interactive {
		t.Fatalf("interleaved hot content classified %v", got)
	}
}

func TestSemiInteractiveDetection(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	// write-once, read-many within the window, reads far from the write
	cl.ObserveWrite("video", 0)
	for i := 0; i < 15; i++ {
		cl.ObserveRead("video", 10+float64(i))
	}
	if got := cl.Classify("video", 30); got != SemiInteractive {
		t.Fatalf("read-hot content classified %v", got)
	}
}

func TestPassiveDetection(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	cl.ObserveWrite("archive", 0)
	cl.ObserveRead("archive", 100)
	if got := cl.Classify("archive", 200); got != Passive {
		t.Fatalf("cold content classified %v", got)
	}
	if got := cl.Classify("never-seen", 0); got != Passive {
		t.Fatalf("unseen content classified %v", got)
	}
}

func TestWindowExpiry(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	for i := 0; i < 20; i++ {
		cl.ObserveRead("burst", float64(i))
	}
	if cl.Classify("burst", 20) != SemiInteractive {
		t.Fatal("hot burst not detected")
	}
	// 2 windows later everything has aged out
	if got := cl.Classify("burst", 150); got != Passive {
		t.Fatalf("aged content classified %v", got)
	}
}

func TestAccessCount(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	cl.ObserveWrite("f", 0)
	cl.ObserveRead("f", 1)
	cl.ObserveRead("f", 2)
	if got := cl.AccessCount("f", 3); got != 3 {
		t.Fatalf("AccessCount = %d", got)
	}
	if got := cl.AccessCount("f", 200); got != 0 {
		t.Fatalf("aged AccessCount = %d", got)
	}
	if got := cl.AccessCount("ghost", 0); got != 0 {
		t.Fatalf("unseen AccessCount = %d", got)
	}
}

func TestForget(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	cl.ObserveWrite("f", 0)
	if cl.Tracked() != 1 {
		t.Fatal("not tracked")
	}
	cl.Forget("f")
	if cl.Tracked() != 0 {
		t.Fatal("still tracked after Forget")
	}
}

func TestInteractiveRequiresInterleaving(t *testing.T) {
	cl := NewClassifier(DefaultClassifierConfig())
	// high writes AND high reads, but separated by > 5s gaps
	for i := 0; i < 15; i++ {
		cl.ObserveWrite("log", float64(i))
	}
	for i := 0; i < 15; i++ {
		cl.ObserveRead("log", 30+float64(i))
	}
	// reads started 15s after last write: no interleaving...
	// except the first read at t=30 vs last write t=14 — gap 16 > 5. Good.
	if got := cl.Classify("log", 46); got != SemiInteractive {
		t.Fatalf("non-interleaved hot content classified %v", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	bad := []ClassifierConfig{
		{Window: 0, HighWrite: 1, HighRead: 1, InteractiveGap: 5},
		{Window: 60, HighWrite: 0, HighRead: 1, InteractiveGap: 5},
		{Window: 60, HighWrite: 1, HighRead: 1, InteractiveGap: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			NewClassifier(cfg)
		}()
	}
}

func TestClassifyMonotoneInObservations(t *testing.T) {
	// property: adding more reads never demotes below the read-only class
	f := func(reads uint8) bool {
		cl := NewClassifier(DefaultClassifierConfig())
		id := ID(fmt.Sprintf("c%d", reads))
		n := int(reads%40) + 1
		for i := 0; i < n; i++ {
			cl.ObserveRead(id, float64(i)*0.5)
		}
		got := cl.Classify(id, float64(n)*0.5)
		if n >= DefaultClassifierConfig().HighRead {
			return got == SemiInteractive
		}
		return got == Passive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
