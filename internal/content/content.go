// Package content implements SCDA's content model (section II-B): contents
// are classified by write and read frequency into active classes — high
// write/high read (HWHR, interactive), low write/high read (LWHR), high
// write/low read (HWLR) — and the passive class, low write/low read (LWLR).
// The paper motivates the split with HDFS measurements where "about 60% of
// content was not accessed at all in a 20 day window".
//
// Classification is either declared by the client application or learned
// by the RMs from observed access frequencies; both paths are implemented
// here. The interactivity criterion follows section VII: "a maximum
// interactivity interval of 5 seconds" between interleaved reads and
// writes marks content interactive.
package content

import (
	"fmt"
)

// Class is a content access class.
type Class int

const (
	// Unknown means not yet declared or learned.
	Unknown Class = iota
	// Interactive is HWHR: reads and writes interleaved within the
	// interactivity interval (chat, collaborative editing, hot tables).
	Interactive
	// SemiInteractive is HWLR or LWHR: one operation frequent, the other
	// rare (append-heavy logs, publish-once read-many video).
	SemiInteractive
	// Passive is LWLR: rarely touched after initial storage (sent email,
	// cold archives).
	Passive
)

// String names the class for logs and learning diagnostics.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case SemiInteractive:
		return "semi-interactive"
	case Passive:
		return "passive"
	default:
		return "unknown"
	}
}

// ID identifies a stored content (file, object, chunk group).
type ID string

// Info is the metadata the name nodes keep per content.
type Info struct {
	ID   ID
	Size int64
	// Declared is the class the client asserted at creation (Unknown if
	// none); Learned is the classifier's current estimate.
	Declared Class
	Learned  Class
}

// Effective returns the class used for server selection: the declared
// class wins ("the client applications can specify the type of content"),
// falling back to the learned one, then Passive (the safe default for
// untouched content, consistent with the 60%-cold observation).
func (i *Info) Effective() Class {
	if i.Declared != Unknown {
		return i.Declared
	}
	if i.Learned != Unknown {
		return i.Learned
	}
	return Passive
}

// ClassifierConfig sets the learning thresholds.
type ClassifierConfig struct {
	// Window is the sliding observation window in seconds.
	Window float64
	// HighWrite / HighRead are the ops-per-window thresholds separating
	// "high" from "low" frequency; the paper leaves them "user defined".
	HighWrite int
	HighRead  int
	// InteractiveGap is the maximum write↔read interleave gap that marks
	// interactivity (the paper's 5 seconds).
	InteractiveGap float64
}

// DefaultClassifierConfig mirrors the paper's constants.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{Window: 60, HighWrite: 10, HighRead: 10, InteractiveGap: 5}
}

func (c ClassifierConfig) validate() error {
	if c.Window <= 0 || c.InteractiveGap <= 0 {
		return fmt.Errorf("content: non-positive window/gap %+v", c)
	}
	if c.HighWrite <= 0 || c.HighRead <= 0 {
		return fmt.Errorf("content: non-positive thresholds %+v", c)
	}
	return nil
}

// Classifier learns content classes from observed accesses, the "RMs of
// the servers can learn the type of content from the server access
// frequencies" path. One classifier instance serves one block server (or
// one name node).
type Classifier struct {
	cfg   ClassifierConfig
	stats map[ID]*accessStats
}

type accessStats struct {
	writes, reads   []float64 // access times within the window
	lastWrite       float64
	lastRead        float64
	sawInterleaving bool
}

// NewClassifier builds a classifier; invalid configs panic (construction
// bug, not runtime input).
func NewClassifier(cfg ClassifierConfig) *Classifier {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Classifier{cfg: cfg, stats: make(map[ID]*accessStats)}
}

func (cl *Classifier) stat(id ID) *accessStats {
	s, ok := cl.stats[id]
	if !ok {
		s = &accessStats{lastWrite: -1e18, lastRead: -1e18}
		cl.stats[id] = s
	}
	return s
}

func trim(ts []float64, cutoff float64) []float64 {
	i := 0
	for i < len(ts) && ts[i] < cutoff {
		i++
	}
	return ts[i:]
}

// ObserveWrite records a write to the content at time now (seconds).
func (cl *Classifier) ObserveWrite(id ID, now float64) {
	s := cl.stat(id)
	s.writes = append(trim(s.writes, now-cl.cfg.Window), now)
	if now-s.lastRead <= cl.cfg.InteractiveGap {
		s.sawInterleaving = true
	}
	s.lastWrite = now
}

// ObserveRead records a read.
func (cl *Classifier) ObserveRead(id ID, now float64) {
	s := cl.stat(id)
	s.reads = append(trim(s.reads, now-cl.cfg.Window), now)
	if now-s.lastWrite <= cl.cfg.InteractiveGap {
		s.sawInterleaving = true
	}
	s.lastRead = now
}

// Classify returns the current class estimate for the content at time now.
func (cl *Classifier) Classify(id ID, now float64) Class {
	s, ok := cl.stats[id]
	if !ok {
		return Passive
	}
	s.writes = trim(s.writes, now-cl.cfg.Window)
	s.reads = trim(s.reads, now-cl.cfg.Window)
	hw := len(s.writes) >= cl.cfg.HighWrite
	hr := len(s.reads) >= cl.cfg.HighRead
	switch {
	case hw && hr && s.sawInterleaving:
		return Interactive
	case hw || hr:
		return SemiInteractive
	default:
		return Passive
	}
}

// AccessCount returns reads+writes observed in the current window — the
// popularity counter the RM uses to decide when passive content "can be
// totally moved to the dormant servers" (section VII-C).
func (cl *Classifier) AccessCount(id ID, now float64) int {
	s, ok := cl.stats[id]
	if !ok {
		return 0
	}
	s.writes = trim(s.writes, now-cl.cfg.Window)
	s.reads = trim(s.reads, now-cl.cfg.Window)
	return len(s.writes) + len(s.reads)
}

// Forget drops state for a content (deleted or migrated away).
func (cl *Classifier) Forget(id ID) { delete(cl.stats, id) }

// Tracked returns the number of contents with live statistics.
func (cl *Classifier) Tracked() int { return len(cl.stats) }
