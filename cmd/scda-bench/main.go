// Command scda-bench regenerates the data behind every figure of the
// SCDA paper's evaluation (figs. 7-18) and runs the design-claim
// ablations, printing a summary table and writing per-figure CSV series.
//
// Usage:
//
//	scda-bench [-scale quick|paper] [-figures fig07,fig13] [-ablations]
//	           [-out results] [-seed 1] [-duration 30]
//	           [-workers 0] [-reps 1]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	scda-bench -scenario-dir scenarios [-reps 5] [-workers 0] [-out results]
//	scda-bench -search scenarios/power-save-search.json [-reps 1] [-workers 0] [-out results]
//
// With -scenario-dir the bench runs every declarative scenario spec
// (*.json) in the directory instead of the paper figures: sweeps expand to
// one variant each, the (scenario, replicate) grid fans out across the
// worker pool, and with -reps > 1 each scenario's series carry mean ± 95%
// CI error bars. Results are seed-deterministic at any worker count.
// Specs selecting "engine": "fluid" run on the max-min fluid backend and
// mix freely with packet specs in one directory — same CSV schema either
// way.
//
// With -search the bench runs one adaptive search offline: the named
// spec's "search" block (see scenarios/README.md) compiles to an
// optimization problem and the internal/search engine evaluates variants
// on the local worker pool — no service required. The round-by-round
// trajectory prints as it happens, and the deterministic result document
// and trajectory CSV land under -out, byte-identical to what scda-serve's
// /v1/searches/{id}/result endpoints serve for the same spec.
//
// At -scale paper the suite reproduces the published parameters
// (X=500/200 Mb/s, 100 s horizons) and takes correspondingly longer;
// quick scale divides bandwidth and arrival rates by 10 so shapes and
// win factors are preserved at a fraction of the cost.
//
// Independent runs (figures, sweep points, ablations, replicate seeds)
// fan out across -workers goroutines (0 = GOMAXPROCS, 1 = serial);
// results are seed-deterministic and identical at any worker count.
// With -reps > 1 each figure is replicated at seeds derived from -seed
// and the CSV series carry mean ± 95% CI error bars in a yerr column.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole
// run (use -workers 1 for a profile free of pool scheduling noise), so
// hot-path work is measurable without editing code:
//
//	scda-bench -scale quick -workers 1 -cpuprofile cpu.pprof
//	go tool pprof -top cpu.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/search"
)

// memProfilePath is set from -memprofile so flushProfiles can write the
// heap profile on both the normal and the fail exit path.
var memProfilePath string

// flushProfiles finalizes any requested profiles. os.Exit skips defers, so
// fail() calls this explicitly; a failed run still leaves a parseable
// (partial) CPU profile and a heap profile. No-op when profiling is off.
func flushProfiles() {
	pprof.StopCPUProfile()
	if memProfilePath == "" {
		return
	}
	path := memProfilePath
	memProfilePath = "" // write at most once
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scda-bench: creating mem profile: %v\n", err)
		return
	}
	runtime.GC() // up-to-date live-heap statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "scda-bench: writing mem profile: %v\n", err)
	}
	f.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scda-bench: "+format+"\n", args...)
	flushProfiles()
	os.Exit(1)
}

// runScenarios is the -scenario-dir mode: load and expand every spec in
// dir, flatten the (scenario, replicate) grid onto the pool, and write
// each scenario's summary and series CSVs under out.
func runScenarios(dir, out string, reps int, pool *runner.Pool) {
	specs, err := scenario.LoadDir(dir)
	if err != nil {
		fail("%v", err)
	}
	specs, err = scenario.ExpandAll(specs)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("SCDA scenario bench — %d scenarios from %s, workers=%d reps=%d\n\n",
		len(specs), dir, pool.Workers(), reps)
	start := time.Now()
	results, err := scenario.RunAll(specs, reps, pool)
	if err != nil {
		fail("%v", err)
	}
	elapsed := time.Since(start)
	for _, r := range results {
		fmt.Printf("%s  (%d requests)\n", r.Spec.Name, r.Requests)
		r.PrintSummary(os.Stdout)
		paths, err := r.WriteFiles(out)
		if err != nil {
			fail("writing %s: %v", r.Spec.Name, err)
		}
		for _, p := range paths {
			fmt.Printf("    -> %s\n", p)
		}
		fmt.Println()
	}
	fmt.Printf("%d scenarios completed in %.2fs wall-clock on %d workers\n",
		len(results), elapsed.Seconds(), pool.Workers())
}

// runSearch is the -search mode: compile the spec's search block and run
// the adaptive engine offline on the local pool, printing rounds as they
// complete and writing the deterministic result document and trajectory
// CSV under out.
func runSearch(path, out string, reps int, pool *runner.Pool) {
	spec, err := scenario.Load(path)
	if err != nil {
		fail("%v", err)
	}
	p, err := search.Compile(spec, reps, 0)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("SCDA adaptive search — %s: %s %s of %s over %s, workers=%d reps=%d\n\n",
		spec.Name, p.Strategy, p.Objective, p.Metric, p.Parameter, pool.Workers(), p.BaseReps)
	start := time.Now()
	res, err := search.Run(context.Background(), p, &search.Local{Pool: pool}, func(r search.Round) {
		line := fmt.Sprintf("round %d  reps=%d evaluated=%d pruned=%d", r.Round, r.Reps, r.Evaluations, r.Pruned)
		if r.Incumbent != nil {
			line += fmt.Sprintf("  incumbent %s=%v %s=%v", p.Parameter, r.Incumbent.Value, p.Metric, r.Incumbent.Objective)
		}
		fmt.Println(line)
	})
	if err != nil {
		fail("%v", err)
	}
	elapsed := time.Since(start)
	if err := os.MkdirAll(out, 0o755); err != nil {
		fail("%v", err)
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	jsonPath := filepath.Join(out, spec.Name+"-search.json")
	csvPath := filepath.Join(out, spec.Name+"-trajectory.csv")
	if err := os.WriteFile(jsonPath, append(doc, '\n'), 0o644); err != nil {
		fail("%v", err)
	}
	if err := os.WriteFile(csvPath, res.TrajectoryCSV(), 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Printf("\nsearch completed in %.2fs wall-clock: %d rounds, %d evaluations, converged=%v\n",
		elapsed.Seconds(), len(res.Rounds), res.Evaluations, res.Converged)
	if res.Incumbent != nil {
		fmt.Printf("incumbent %s = %v  (%s %s = %v)\n", p.Parameter, res.Incumbent.Value, p.Objective, p.Metric, res.Incumbent.Objective)
	} else {
		fmt.Println("no feasible incumbent: every evaluated variant violated a constraint")
	}
	fmt.Printf("    -> %s\n    -> %s\n", jsonPath, csvPath)
}

func main() {
	scale := flag.String("scale", "quick", "quick or paper")
	figures := flag.String("figures", "all", "comma-separated figure IDs (fig07..fig18) or all")
	ablations := flag.Bool("ablations", false, "also run the A1-A11 design-claim ablations")
	sweeps := flag.Bool("sweeps", false, "also run the client-scale and NNS-scale sweeps")
	out := flag.String("out", "results", "output directory for CSV series")
	seed := flag.Uint64("seed", 1, "experiment seed")
	duration := flag.Float64("duration", 0, "override simulated horizon in seconds")
	workers := flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS, 1 = serial)")
	reps := flag.Int("reps", 1, "replicate seeds per figure; >1 adds 95% CI error bars")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	scenarioDir := flag.String("scenario-dir", "", "run every scenario spec in this directory instead of the paper figures")
	searchSpec := flag.String("search", "", "run this spec's adaptive search offline instead of the paper figures")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("creating cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("starting cpu profile: %v", err)
		}
	}
	memProfilePath = *memprofile
	defer flushProfiles()

	if *scenarioDir != "" || *searchSpec != "" {
		if *scenarioDir != "" && *searchSpec != "" {
			fail("-scenario-dir and -search are mutually exclusive")
		}
		mode := "-scenario-dir"
		if *searchSpec != "" {
			mode = "-search"
		}
		// scenario specs carry their own seed/duration/scale; rejecting
		// the figure-mode flags beats silently ignoring them
		inert := map[string]bool{"scale": true, "figures": true, "ablations": true,
			"sweeps": true, "seed": true, "duration": true}
		flag.Visit(func(f *flag.Flag) {
			if inert[f.Name] {
				fail("-%s has no effect with %s: edit the spec files instead", f.Name, mode)
			}
		})
		if *searchSpec != "" {
			runSearch(*searchSpec, *out, *reps, runner.New(*workers))
		} else {
			runScenarios(*scenarioDir, *out, *reps, runner.New(*workers))
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "scda-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed
	if *duration > 0 {
		sc.Duration = *duration
	}

	pool := runner.New(*workers)

	ids := experiments.FigureIDs()
	if *figures != "all" {
		ids = strings.Split(*figures, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	fmt.Printf("SCDA reproduction bench — scale=%s duration=%.0fs bw×%.2f arrivals×%.2f seed=%d workers=%d reps=%d\n\n",
		*scale, sc.Duration, sc.BWScale, sc.ArrivalScale, sc.Seed, pool.Workers(), *reps)

	start := time.Now()
	var results []experiments.FigureResult
	var err error
	if *reps > 1 {
		// flatten the (figure, seed) grid onto one pool so both axes fan
		// out, then aggregate each figure's replicates to mean ± 95% CI
		seeds := runner.DeriveSeeds(sc.Seed, *reps)
		var flat []experiments.FigureResult
		flat, err = runner.Map(pool, len(ids)*(*reps), func(i int) (experiments.FigureResult, error) {
			rsc := sc
			rsc.Seed = seeds[i%*reps]
			return experiments.Figure(ids[i/(*reps)], rsc)
		})
		if err == nil {
			results = make([]experiments.FigureResult, len(ids))
			for f := range ids {
				results[f] = experiments.AggregateFigure(flat[f*(*reps) : (f+1)*(*reps)])
			}
		}
	} else {
		results, err = experiments.RunFigures(ids, sc, pool)
	}
	if err != nil {
		fail("%v", err)
	}
	elapsed := time.Since(start)

	for _, f := range results {
		path, err := export.SaveSeries(*out, f.ID, f.Series)
		if err != nil {
			fail("saving %s: %v", f.ID, err)
		}
		fmt.Printf("%s  %s\n", f.ID, f.Title)
		keys := make([]string, 0, len(f.Summary))
		for k := range f.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("    %-24s %12.4g\n", k, f.Summary[k])
		}
		fmt.Printf("    series -> %s\n\n", path)
	}
	fmt.Printf("figures completed in %.2fs wall-clock on %d workers\n\n",
		elapsed.Seconds(), pool.Workers())

	if *sweeps {
		fmt.Println("sweeps:")
		cs, err := experiments.ClientScaleSweep(nil, sc, pool)
		if err != nil {
			fail("client sweep: %v", err)
		}
		if path, err := export.SaveSeries(*out, cs.ID, cs.Series); err == nil {
			fmt.Printf("  %s -> %s\n", cs.Title, path)
		}
		ns, err := experiments.NNSScaleSweep(nil, sc, pool)
		if err != nil {
			fail("nns sweep: %v", err)
		}
		if path, err := export.SaveSeries(*out, ns.ID, ns.Series); err == nil {
			fmt.Printf("  %s -> %s\n", ns.Title, path)
		}
		fmt.Println()
	}

	if *ablations {
		fmt.Println("ablations (design-claim validations):")
		rs, err := experiments.RunAblations(sc, pool)
		if err != nil {
			fail("ablations: %v", err)
		}
		for _, r := range rs {
			status := "PASS"
			if !r.Passed {
				status = "FAIL"
			}
			fmt.Printf("  %s [%s] %s\n", r.ID, status, r.Title)
			keys := make([]string, 0, len(r.Values))
			for k := range r.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("      %-24s %12.4g\n", k, r.Values[k])
			}
		}
	}
}
