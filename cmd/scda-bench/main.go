// Command scda-bench regenerates the data behind every figure of the
// SCDA paper's evaluation (figs. 7-18) and runs the design-claim
// ablations, printing a summary table and writing per-figure CSV series.
//
// Usage:
//
//	scda-bench [-scale quick|paper] [-figures fig07,fig13] [-ablations]
//	           [-out results] [-seed 1] [-duration 30]
//
// At -scale paper the suite reproduces the published parameters
// (X=500/200 Mb/s, 100 s horizons) and takes correspondingly longer;
// quick scale divides bandwidth and arrival rates by 10 so shapes and
// win factors are preserved at a fraction of the cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/export"
)

func main() {
	scale := flag.String("scale", "quick", "quick or paper")
	figures := flag.String("figures", "all", "comma-separated figure IDs (fig07..fig18) or all")
	ablations := flag.Bool("ablations", false, "also run the A1-A11 design-claim ablations")
	sweeps := flag.Bool("sweeps", false, "also run the client-scale and NNS-scale sweeps")
	out := flag.String("out", "results", "output directory for CSV series")
	seed := flag.Uint64("seed", 1, "experiment seed")
	duration := flag.Float64("duration", 0, "override simulated horizon in seconds")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "scda-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed
	if *duration > 0 {
		sc.Duration = *duration
	}

	ids := experiments.FigureIDs()
	if *figures != "all" {
		ids = strings.Split(*figures, ",")
	}

	fmt.Printf("SCDA reproduction bench — scale=%s duration=%.0fs bw×%.2f arrivals×%.2f seed=%d\n\n",
		*scale, sc.Duration, sc.BWScale, sc.ArrivalScale, sc.Seed)

	for _, id := range ids {
		f, err := experiments.Figure(strings.TrimSpace(id), sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		path, err := export.SaveSeries(*out, f.ID, f.Series)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-bench: saving %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Printf("%s  %s\n", f.ID, f.Title)
		keys := make([]string, 0, len(f.Summary))
		for k := range f.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("    %-24s %12.4g\n", k, f.Summary[k])
		}
		fmt.Printf("    series -> %s\n\n", path)
	}

	if *sweeps {
		fmt.Println("sweeps:")
		cs, err := experiments.ClientScaleSweep(nil, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-bench: client sweep: %v\n", err)
			os.Exit(1)
		}
		if path, err := export.SaveSeries(*out, cs.ID, cs.Series); err == nil {
			fmt.Printf("  %s -> %s\n", cs.Title, path)
		}
		ns, err := experiments.NNSScaleSweep(nil, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-bench: nns sweep: %v\n", err)
			os.Exit(1)
		}
		if path, err := export.SaveSeries(*out, ns.ID, ns.Series); err == nil {
			fmt.Printf("  %s -> %s\n", ns.Title, path)
		}
		fmt.Println()
	}

	if *ablations {
		fmt.Println("ablations (design-claim validations):")
		rs, err := experiments.AllAblations(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-bench: ablations: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rs {
			status := "PASS"
			if !r.Passed {
				status = "FAIL"
			}
			fmt.Printf("  %s [%s] %s\n", r.ID, status, r.Title)
			keys := make([]string, 0, len(r.Values))
			for k := range r.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("      %-24s %12.4g\n", k, r.Values[k])
			}
		}
	}
}
