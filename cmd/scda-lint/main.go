// Command scda-lint runs the repo's static-analysis suite: five stdlib-only
// analyzers enforcing the determinism, 0-alloc, lock-order and godoc
// contracts the codebase promises (see internal/lint and the "Static
// guarantees" section of ARCHITECTURE.md).
//
// Usage:
//
//	scda-lint [flags] [packages]
//
//	scda-lint ./...                        lint the whole module
//	scda-lint -analyzers wallclock ./...   run one analyzer
//	scda-lint -list                        describe the analyzers
//
// Findings print as "file:line: [analyzer] message" with paths relative to
// the module root. Exit status: 0 clean, 1 findings, 2 load/usage error.
// The committed baseline (scripts/lint-baseline.txt, override with
// -baseline) suppresses deliberately-exempt findings by their
// line-number-free key; stale baseline entries are warned about on stderr
// so the file cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "scripts/lint-baseline.txt", "baseline file (module-root-relative); missing file = empty baseline")
		analyzersCSV = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list         = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *analyzersCSV != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*analyzersCSV, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "scda-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scda-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scda-lint: %v\n", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)

	bl, err := lint.LoadBaseline(filepath.Join(loader.ModuleRoot, filepath.FromSlash(*baselinePath)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scda-lint: %v\n", err)
		os.Exit(2)
	}
	kept := bl.Filter(findings)
	for _, e := range bl.Stale() {
		fmt.Fprintf(os.Stderr, "scda-lint: stale baseline entry (matched nothing): %s\n", e)
	}
	for _, f := range kept {
		fmt.Println(f)
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "scda-lint: %d finding(s)\n", len(kept))
		os.Exit(1)
	}
}
