// Command scda-trace generates and inspects workload trace files — the
// repository's stand-in for the paper's YouTube and datacenter traces.
//
// Usage:
//
//	scda-trace -workload video -duration 100 -seed 1 > video.csv
//	scda-trace -stats video.csv
//	scda-trace -list
//
// -workload accepts any name from the generator registry (-list prints
// them with descriptions), so the help stays truthful as generators are
// added.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "dc", "workload generator: "+workload.Help())
	duration := flag.Float64("duration", 100, "trace horizon in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	statsFile := flag.String("stats", "", "summarise an existing trace file instead of generating")
	list := flag.Bool("list", false, "list registered workload generators and exit")
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Printf("%-12s %s\n", name, workload.Describe(name))
		}
		return
	}

	if *statsFile != "" {
		f, err := os.Open(*statsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		reqs, err := workload.ReadTrace(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-trace: %v\n", err)
			os.Exit(1)
		}
		st := workload.Summarize(reqs)
		fmt.Printf("requests:      %d\n", st.Count)
		fmt.Printf("control (<5KB): %d (%.1f%%)\n", st.ControlCount,
			100*float64(st.ControlCount)/float64(max(st.Count, 1)))
		fmt.Printf("total bytes:   %d (%.1f MB)\n", st.TotalBytes, float64(st.TotalBytes)/1e6)
		fmt.Printf("mean size:     %.0f bytes\n", st.MeanBytes)
		fmt.Printf("max size:      %d bytes\n", st.MaxBytes)
		fmt.Printf("duration:      %.2f s\n", st.Duration)
		return
	}

	gen, err := workload.New(*wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scda-trace: %v\n", err)
		os.Exit(2)
	}
	reqs := gen.Generate(sim.NewRNG(*seed), *duration)
	if err := workload.WriteTrace(os.Stdout, reqs); err != nil {
		fmt.Fprintf(os.Stderr, "scda-trace: %v\n", err)
		os.Exit(1)
	}
}
