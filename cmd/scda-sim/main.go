// Command scda-sim runs one datacenter scenario — SCDA or the RandTCP
// baseline — with a chosen workload on the paper's fig. 6 topology and
// prints the resulting transfer statistics.
//
// Usage:
//
//	scda-sim [-system scda|randtcp] [-workload video|videonoctl|dc|pareto]
//	         [-x 500e6] [-k 3] [-duration 30] [-seed 1] [-replicate]
//	         [-nns 3] [-rscale 0] [-poweraware] [-trace file.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	system := flag.String("system", "scda", "scda or randtcp")
	wl := flag.String("workload", "dc", "video, videonoctl, dc or pareto")
	x := flag.Float64("x", 500e6, "base bandwidth X in bits/sec")
	k := flag.Float64("k", 3, "bandwidth factor K")
	duration := flag.Float64("duration", 30, "arrival horizon in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	replicate := flag.Bool("replicate", false, "internal replication after writes (section VIII-B)")
	nns := flag.Int("nns", 3, "number of name node servers")
	rscale := flag.Float64("rscale", 0, "passive-content scale-down threshold in bits/sec (0 = off)")
	powerAware := flag.Bool("poweraware", false, "power-aware server selection (section VII-D)")
	trace := flag.String("trace", "", "replay a workload trace CSV instead of generating")
	flag.Parse()

	var sys cluster.System
	switch *system {
	case "scda":
		sys = cluster.SCDA
	case "randtcp":
		sys = cluster.RandTCP
	default:
		fmt.Fprintf(os.Stderr, "scda-sim: unknown system %q\n", *system)
		os.Exit(2)
	}

	cfg := cluster.DefaultConfig(sys)
	cfg.Topology.X = *x
	cfg.Topology.K = *k
	cfg.Seed = *seed
	cfg.Replicate = *replicate
	cfg.NumNNS = *nns
	cfg.Rscale = *rscale
	cfg.PowerAware = *powerAware
	cfg.HeterogeneousPower = *powerAware

	var reqs []workload.Request
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-sim: %v\n", err)
			os.Exit(1)
		}
		reqs, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-sim: %v\n", err)
			os.Exit(1)
		}
	} else {
		var gen workload.Generator
		switch *wl {
		case "video":
			gen = workload.DefaultVideoSpec()
		case "videonoctl":
			spec := workload.DefaultVideoSpec()
			spec.ControlFlows = false
			gen = spec
		case "dc":
			gen = workload.DefaultDCSpec()
		case "pareto":
			gen = workload.DefaultParetoSpec()
		default:
			fmt.Fprintf(os.Stderr, "scda-sim: unknown workload %q\n", *wl)
			os.Exit(2)
		}
		reqs = gen.Generate(sim.NewRNG(*seed), *duration)
	}

	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scda-sim: %v\n", err)
		os.Exit(1)
	}
	st := workload.Summarize(reqs)
	fmt.Printf("system=%v workload=%s requests=%d totalMB=%.1f X=%.0fMb/s K=%.0f\n",
		sys, *wl, st.Count, float64(st.TotalBytes)/1e6, *x/1e6, *k)

	m := c.RunWorkload(reqs, *duration*3)
	cdf := m.FCTCDF()
	fmt.Printf("started=%d completed=%d drops=%d violations=%d\n",
		m.Started, m.Completed, m.Drops, m.Violations)
	if cdf.N() > 0 {
		fmt.Printf("FCT: mean=%.3fs median=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
			m.MeanFCT(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Quantile(1))
	}
	c.Power.AccrueAll(c.Sim.Now())
	fmt.Printf("energy=%.1f kJ over %.1f simulated seconds\n",
		c.Power.TotalEnergy()/1e3, c.Sim.Now())
}
