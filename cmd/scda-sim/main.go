// Command scda-sim runs one datacenter scenario — SCDA or the RandTCP
// baseline — and prints the resulting transfer statistics.
//
// Three modes:
//
//	scda-sim [-system scda|randtcp] [-workload NAME] [-x 500e6] [-k 3]
//	         [-duration 30] [-seed 1] [-replicate] [-nns 3] [-rscale 0]
//	         [-poweraware] [-trace file.csv]
//	    flag mode: one workload from the registry (or a replayed trace
//	    CSV) on the fig. 6 topology.
//
//	scda-sim -scenario file.json [-out results]
//	    scenario mode: run a declarative scenario spec end to end —
//	    topology, phased workload program, system, fault injection —
//	    expanding its sweep (if any) into one run per variant, and write
//	    the requested output CSVs under -out. Output is byte-identical
//	    across runs of the same spec. Specs with "engine": "fluid" run on
//	    the max-min fluid backend (internal/flowsim) instead of the
//	    packet cluster: same output files, orders of magnitude faster,
//	    100k+ concurrent transfers — see scenarios/fluid-100k.json.
//
//	scda-sim -validate PATH...
//	    validate scenario specs (files, or directories of *.json) and
//	    exit non-zero on the first invalid one. CI runs this over
//	    scenarios/.
//
//	scda-sim -hash PATH...
//	    print the stable content hash of each spec (files, or directories
//	    of *.json), expanding sweeps to one line per variant. scda-serve
//	    caches results under this hash suffixed with the replicate count
//	    ("<hash>-r<reps>") — a sweep submitted as a job group caches one
//	    entry per variant — so operators can predict cache hits and
//	    locate cache directories.
//
// Workload names come from the generator registry; see scenarios/README.md
// for the scenario spec reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scda-sim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	system := flag.String("system", "scda", "scda or randtcp")
	wl := flag.String("workload", "dc", "workload generator: "+workload.Help())
	x := flag.Float64("x", 500e6, "base bandwidth X in bits/sec")
	k := flag.Float64("k", 3, "bandwidth factor K")
	duration := flag.Float64("duration", 30, "arrival horizon in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	replicate := flag.Bool("replicate", false, "internal replication after writes (section VIII-B)")
	nns := flag.Int("nns", 3, "number of name node servers")
	rscale := flag.Float64("rscale", 0, "passive-content scale-down threshold in bits/sec (0 = off)")
	powerAware := flag.Bool("poweraware", false, "power-aware server selection (section VII-D)")
	trace := flag.String("trace", "", "replay a workload trace CSV instead of generating")
	scenarioFile := flag.String("scenario", "", "run a declarative scenario spec (JSON)")
	validate := flag.Bool("validate", false, "validate scenario specs (args: files or directories) and exit")
	hash := flag.Bool("hash", false, "print the stable content hash of scenario specs (args: files or directories) and exit")
	out := flag.String("out", "results", "output directory for scenario CSVs")
	flag.Parse()

	if *validate {
		runValidate(flag.Args(), *scenarioFile)
		return
	}
	if *hash {
		runHash(flag.Args(), *scenarioFile)
		return
	}
	if *scenarioFile != "" {
		runScenario(*scenarioFile, *out)
		return
	}

	var sys cluster.System
	switch *system {
	case "scda":
		sys = cluster.SCDA
	case "randtcp":
		sys = cluster.RandTCP
	default:
		fmt.Fprintf(os.Stderr, "scda-sim: unknown system %q\n", *system)
		os.Exit(2)
	}

	cfg := cluster.DefaultConfig(sys)
	cfg.Topology.X = *x
	cfg.Topology.K = *k
	cfg.Seed = *seed
	cfg.Replicate = *replicate
	cfg.NumNNS = *nns
	cfg.Rscale = *rscale
	cfg.PowerAware = *powerAware
	cfg.HeterogeneousPower = *powerAware

	var reqs []workload.Request
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fail("%v", err)
		}
		reqs, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fail("%v", err)
		}
	} else {
		gen, err := workload.New(*wl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-sim: %v\n", err)
			os.Exit(2)
		}
		reqs = gen.Generate(sim.NewRNG(*seed), *duration)
	}

	c, err := cluster.New(cfg)
	if err != nil {
		fail("%v", err)
	}
	st := workload.Summarize(reqs)
	fmt.Printf("system=%v workload=%s requests=%d totalMB=%.1f X=%.0fMb/s K=%.0f\n",
		sys, *wl, st.Count, float64(st.TotalBytes)/1e6, *x/1e6, *k)

	m := c.RunWorkload(reqs, *duration*3)
	cdf := m.FCTCDF()
	fmt.Printf("started=%d completed=%d drops=%d violations=%d\n",
		m.Started, m.Completed, m.Drops, m.Violations)
	if cdf.N() > 0 {
		fmt.Printf("FCT: mean=%.3fs median=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
			m.MeanFCT(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Quantile(1))
	}
	c.Power.AccrueAll(c.Sim.Now())
	fmt.Printf("energy=%.1f kJ over %.1f simulated seconds\n",
		c.Power.TotalEnergy()/1e3, c.Sim.Now())
}

// runScenario executes one spec file (all sweep variants) and writes its
// outputs.
func runScenario(path, out string) {
	spec, err := scenario.Load(path)
	if err != nil {
		fail("%v", err)
	}
	variants, err := spec.Expand()
	if err != nil {
		fail("%v", err)
	}
	for _, s := range variants {
		r, err := scenario.Run(s)
		if err != nil {
			fail("%v", err)
		}
		printResult(r)
		paths, err := r.WriteFiles(out)
		if err != nil {
			fail("writing outputs: %v", err)
		}
		for _, p := range paths {
			fmt.Printf("    -> %s\n", p)
		}
		fmt.Println()
	}
}

// printResult prints one scenario summary header plus the shared metric
// rendering.
func printResult(r *scenario.Result) {
	fmt.Printf("scenario %s (seed=%d duration=%.0fs requests=%d)\n",
		r.Spec.Name, r.Spec.Seed, r.Spec.Duration, r.Requests)
	r.PrintSummary(os.Stdout)
}

// runValidate checks every spec in the given files/directories, printing
// one line per spec, and exits 1 if any is invalid.
func runValidate(args []string, scenarioFile string) {
	if scenarioFile != "" {
		args = append([]string{scenarioFile}, args...)
	}
	if len(args) == 0 {
		fail("-validate needs spec files or directories (e.g. scda-sim -validate scenarios)")
	}
	bad := 0
	check := func(path string) {
		s, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-sim: INVALID %v\n", err)
			bad++
			return
		}
		n := ""
		if s.Sweep != nil {
			vs, _ := s.Expand()
			n = fmt.Sprintf(" (%d sweep variants)", len(vs))
		}
		fmt.Printf("ok %-24s %s%s\n", s.Name, path, n)
	}
	forEachSpecPath(args, check)
	if bad > 0 {
		fail("%d invalid spec(s)", bad)
	}
}

// runHash prints "<hash>  <name>  <path>" for every spec in the given
// files/directories. scda-serve's cache key (and disk-cache directory
// name) is this hash plus a "-r<reps>" replicate-count suffix. A spec
// with a sweep prints one line per expanded variant — the variants are
// what scda-serve actually caches when the spec is submitted as a job
// group, so the printed hashes match the group's child cache keys.
func runHash(args []string, scenarioFile string) {
	if scenarioFile != "" {
		args = append([]string{scenarioFile}, args...)
	}
	if len(args) == 0 {
		fail("-hash needs spec files or directories (e.g. scda-sim -hash scenarios)")
	}
	bad := 0
	forEachSpecPath(args, func(path string) {
		s, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-sim: INVALID %v\n", err)
			bad++
			return
		}
		variants, err := s.Expand()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scda-sim: %v\n", err)
			bad++
			return
		}
		for _, v := range variants {
			h, err := v.Hash()
			if err != nil {
				fmt.Fprintf(os.Stderr, "scda-sim: %v\n", err)
				bad++
				return
			}
			fmt.Printf("%s  %-24s %s\n", h, v.Name, path)
		}
	})
	if bad > 0 {
		fail("%d unhashable spec(s)", bad)
	}
}

// forEachSpecPath calls fn for every named spec file, expanding directory
// arguments to their *.json files in sorted order (same listing as
// scenario.LoadDir, but per-file so one bad spec doesn't hide the rest).
func forEachSpecPath(args []string, fn func(path string)) {
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			fail("%v", err)
		}
		if !info.IsDir() {
			fn(arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.json"))
		if err != nil {
			fail("%v", err)
		}
		if len(matches) == 0 {
			fail("no *.json specs in %s", arg)
		}
		sort.Strings(matches)
		for _, m := range matches {
			fn(m)
		}
	}
}
