// Command scda-serve is the long-running simulation service: the
// internal/service subsystem behind a plain HTTP listener. Instead of a
// one-shot CLI run that rebuilds state from scratch, clients POST
// declarative scenario specs and the service queues, executes, caches and
// streams them:
//
//	scda-serve [-addr :8080] [-workers 0] [-jobs 2] [-cache-dir DIR]
//	           [-default-reps 1] [-max-reps 64]
//	           [-job-history 4096] [-group-history 4096]
//	           [-cache-entries 1024] [-cache-max-entries 4096]
//	           [-cache-max-bytes 1073741824] [-max-group-variants 256]
//
//	# submit a scenario and watch it run
//	curl -X POST --data-binary @scenarios/flash-crowd.json localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j000001/events
//	curl localhost:8080/v1/jobs/j000001/result?csv=summary
//
//	# submit a whole sweep as one job group and fetch the aggregate CSV
//	curl -X POST --data-binary @scenarios/power-save.json localhost:8080/v1/groups
//	curl localhost:8080/v1/groups/g000001/events
//	curl localhost:8080/v1/groups/g000001/result?csv=summary
//
// Results are cached by canonical spec hash × replicate count (see
// `scda-sim -hash`): identical submissions are served without
// recomputation and are byte-identical to `scda-sim -scenario` output for
// the same spec. A sweep spec POSTed to /v1/groups expands server-side;
// each variant is an ordinary cached job and the group result CSV is the
// variants' CSVs concatenated in expansion order, byte-identical to
// `scda-bench -scenario-dir` files. -cache-dir persists results across
// restarts, bounded by -cache-max-entries and -cache-max-bytes with
// oldest-first eviction. SIGINT or SIGTERM shuts down gracefully:
// in-flight jobs stop at their next replicate boundary, queued jobs are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scda-serve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "replicate fan-out pool width (0 = GOMAXPROCS)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	cacheDir := flag.String("cache-dir", "", "persist results under this directory (empty = memory-only cache)")
	defaultReps := flag.Int("default-reps", 1, "replicates when a submission omits ?reps")
	maxReps := flag.Int("max-reps", 64, "upper bound on per-job replicates")
	jobHistory := flag.Int("job-history", 0, "terminal jobs kept in the ledger (0 = 4096)")
	groupHistory := flag.Int("group-history", 0, "total variants kept across terminal job groups (0 = 4096)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory result cache entries (0 = 1024)")
	cacheMaxEntries := flag.Int("cache-max-entries", 0, "disk cache entry bound, oldest-first eviction (0 = 4096, negative = unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "disk cache byte bound, oldest-first eviction (0 = 1 GiB, negative = unbounded)")
	maxGroupVariants := flag.Int("max-group-variants", 0, "variants one group submission may expand to (0 = 256)")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:          *workers,
		JobRunners:       *jobs,
		CacheDir:         *cacheDir,
		DefaultReps:      *defaultReps,
		MaxReps:          *maxReps,
		JobHistory:       *jobHistory,
		GroupHistory:     *groupHistory,
		CacheEntries:     *cacheEntries,
		CacheMaxEntries:  *cacheMaxEntries,
		CacheMaxBytes:    *cacheMaxBytes,
		MaxGroupVariants: *maxGroupVariants,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	poolWidth := *workers
	if poolWidth <= 0 {
		poolWidth = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("scda-serve: listening on http://%s (jobs=%d workers=%d cache-dir=%q)\n",
		ln.Addr(), *jobs, poolWidth, *cacheDir)

	// ReadHeaderTimeout guards the resident listener against connections
	// that never send headers; write timeouts stay off because the events
	// endpoint streams for a job's whole lifetime.
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		fmt.Println("scda-serve: shutting down")
		// Cancel the jobs first: event streams and ?wait=true requests
		// only finish when their job terminates, so closing the service
		// before Shutdown lets those connections drain immediately
		// instead of stalling out the whole timeout.
		svc.Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "scda-serve: shutdown: %v\n", err)
		}
	}
}
