// Command scda-serve is the long-running simulation service: the
// internal/service subsystem behind a plain HTTP listener. Instead of a
// one-shot CLI run that rebuilds state from scratch, clients POST
// declarative scenario specs and the service queues, executes, caches and
// streams them:
//
//	scda-serve [-addr :8080] [-workers 0] [-jobs 2] [-cache-dir DIR]
//	           [-default-reps 1] [-max-reps 64]
//
//	# submit a scenario and watch it run
//	curl -X POST --data-binary @scenarios/flash-crowd.json localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j000001/events
//	curl localhost:8080/v1/jobs/j000001/result?csv=summary
//
// Results are cached by canonical spec hash × replicate count (see
// `scda-sim -hash`): identical submissions are served without
// recomputation and are byte-identical to `scda-sim -scenario` output for
// the same spec. -cache-dir persists results across restarts. SIGINT or
// SIGTERM shuts down gracefully: in-flight jobs stop at their next
// replicate boundary, queued jobs are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scda-serve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "replicate fan-out pool width (0 = GOMAXPROCS)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	cacheDir := flag.String("cache-dir", "", "persist results under this directory (empty = memory-only cache)")
	defaultReps := flag.Int("default-reps", 1, "replicates when a submission omits ?reps")
	maxReps := flag.Int("max-reps", 64, "upper bound on per-job replicates")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:     *workers,
		JobRunners:  *jobs,
		CacheDir:    *cacheDir,
		DefaultReps: *defaultReps,
		MaxReps:     *maxReps,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	poolWidth := *workers
	if poolWidth <= 0 {
		poolWidth = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("scda-serve: listening on http://%s (jobs=%d workers=%d cache-dir=%q)\n",
		ln.Addr(), *jobs, poolWidth, *cacheDir)

	// ReadHeaderTimeout guards the resident listener against connections
	// that never send headers; write timeouts stay off because the events
	// endpoint streams for a job's whole lifetime.
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		fmt.Println("scda-serve: shutting down")
		// Cancel the jobs first: event streams and ?wait=true requests
		// only finish when their job terminates, so closing the service
		// before Shutdown lets those connections drain immediately
		// instead of stalling out the whole timeout.
		svc.Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "scda-serve: shutdown: %v\n", err)
		}
	}
}
