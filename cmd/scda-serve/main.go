// Command scda-serve is the long-running simulation service: the
// internal/service subsystem behind a plain HTTP listener. Instead of a
// one-shot CLI run that rebuilds state from scratch, clients POST
// declarative scenario specs and the service queues, executes, caches and
// streams them:
//
//	scda-serve [-addr :8080] [-workers 0] [-jobs 2] [-cache-dir DIR]
//	           [-default-reps 1] [-max-reps 64]
//	           [-job-history 4096] [-group-history 4096] [-search-history 256]
//	           [-cache-entries 1024] [-cache-max-entries 4096]
//	           [-cache-max-bytes 1073741824] [-max-group-variants 256]
//	           [-slo 0] [-max-job-runtime 0] [-journal-dir DIR]
//	           [-heartbeat 15s] [-shutdown-timeout 10s] [-chaos SPEC]
//	           [-self URL -peers URL,URL,... [-probe-interval 2s]]
//
//	# submit a scenario and watch it run
//	curl -X POST --data-binary @scenarios/flash-crowd.json localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j000001/events
//	curl localhost:8080/v1/jobs/j000001/result?csv=summary
//
//	# submit a whole sweep as one job group and fetch the aggregate CSV
//	curl -X POST --data-binary @scenarios/power-save.json localhost:8080/v1/groups
//	curl localhost:8080/v1/groups/g000001/events
//	curl localhost:8080/v1/groups/g000001/result?csv=summary
//
//	# run an adaptive search (a spec with a "search" block) and fetch the
//	# incumbent and round-by-round trajectory
//	curl -X POST --data-binary @scenarios/power-save-search.json "localhost:8080/v1/searches?wait=true"
//	curl localhost:8080/v1/searches/s000001/events
//	curl localhost:8080/v1/searches/s000001/result
//	curl "localhost:8080/v1/searches/s000001/result?csv=trajectory"
//
// Results are cached by canonical spec hash × replicate count (see
// `scda-sim -hash`): identical submissions are served without
// recomputation and are byte-identical to `scda-sim -scenario` output for
// the same spec. A sweep spec POSTed to /v1/groups expands server-side;
// each variant is an ordinary cached job and the group result CSV is the
// variants' CSVs concatenated in expansion order, byte-identical to
// `scda-bench -scenario-dir` files. -cache-dir persists results across
// restarts, bounded by -cache-max-entries and -cache-max-bytes with
// oldest-first eviction. SIGINT or SIGTERM shuts down gracefully:
// in-flight jobs stop at their next replicate boundary, queued jobs are
// cancelled.
//
// Robustness knobs: -slo enables admission control (submissions whose
// predicted queue wait exceeds the SLO are shed with 429 + Retry-After,
// and /readyz turns unready); -max-job-runtime caps any job's wall time
// server-side; -journal-dir persists accepted jobs write-ahead so a crash
// (kill -9 included) loses no accepted work — restart with the same
// directory and the journal resubmits it; -chaos injects deterministic
// faults (see internal/chaos) for robustness testing.
//
// Coordinator mode: start N processes with the same -peers list (and each
// its own -self) and they form a static rendezvous-hash ring routing jobs
// by canonical spec hash — the fleet behaves as one content-addressed
// cache. Any peer accepts any request: submissions forward single-hop to
// the owning peer, status/result/events/cancel for remote jobs proxy by
// the ID's node prefix, sweep groups fan variants across the ring, and a
// /readyz health prober (period -probe-interval) degrades to local
// execution when an owner is down — results are byte-identical wherever
// they run. See the Fleet section of ARCHITECTURE.md.
//
// Adaptive searches: a spec whose "search" block names a goal metric, one
// sweepable parameter and a strategy POSTs to /v1/searches; the service
// runs the internal/search engine, submitting each round as an ordinary
// job group, so evaluations ride the cache, the singleflight and (in
// coordinator mode) the ring untouched. An identical resubmitted search
// is a pure cache replay: byte-identical trajectory, zero simulation
// work. -search-history bounds the terminal searches kept in the ledger.
// See the Search layer section of ARCHITECTURE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/ring"
	"repro/internal/service"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scda-serve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "replicate fan-out pool width (0 = GOMAXPROCS)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	cacheDir := flag.String("cache-dir", "", "persist results under this directory (empty = memory-only cache)")
	defaultReps := flag.Int("default-reps", 1, "replicates when a submission omits ?reps")
	maxReps := flag.Int("max-reps", 64, "upper bound on per-job replicates")
	jobHistory := flag.Int("job-history", 0, "terminal jobs kept in the ledger (0 = 4096)")
	groupHistory := flag.Int("group-history", 0, "total variants kept across terminal job groups (0 = 4096)")
	searchHistory := flag.Int("search-history", 0, "terminal adaptive searches kept in the ledger (0 = 256)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory result cache entries (0 = 1024)")
	cacheMaxEntries := flag.Int("cache-max-entries", 0, "disk cache entry bound, oldest-first eviction (0 = 4096, negative = unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "disk cache byte bound, oldest-first eviction (0 = 1 GiB, negative = unbounded)")
	maxGroupVariants := flag.Int("max-group-variants", 0, "variants one group submission may expand to (0 = 256)")
	slo := flag.Duration("slo", 0, "queueing latency SLO; submissions predicted to wait longer are shed with 429 (0 = shedding off)")
	maxJobRuntime := flag.Duration("max-job-runtime", 0, "server-side cap on any job's wall time, cut at replicate boundaries (0 = unlimited)")
	journalDir := flag.String("journal-dir", "", "write-ahead job journal directory; accepted jobs survive a crash and are resubmitted on restart (empty = off)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "idle heartbeat interval on live event streams (negative = off)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "bound on graceful drain after SIGINT/SIGTERM")
	chaosSpec := flag.String("chaos", "", "fault injection, e.g. seed=7,latency=0.2,panic=0.1,diskerr=0.1,drop=0.1,maxlatency=50ms (empty = off)")
	self := flag.String("self", "", "this peer's own base URL within a fleet, e.g. http://10.0.0.1:8080 (must appear in -peers)")
	peersFlag := flag.String("peers", "", "comma-separated base URLs of every fleet peer, -self included; setting -self/-peers turns on coordinator mode")
	probeInterval := flag.Duration("probe-interval", 0, "peer health-probe period in coordinator mode (0 = 2s, negative = off)")
	flag.Parse()

	inj, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fail("%v", err)
	}

	var peers []string
	if *peersFlag != "" {
		peers = strings.Split(*peersFlag, ",")
	}
	if *self != "" || len(peers) > 0 {
		// Validate the ring up front: service.New panics on a bad fleet
		// config, a static misconfiguration that deserves a polite message.
		if _, err := ring.New(*self, peers); err != nil {
			fail("%v", err)
		}
	}

	svc := service.New(service.Config{
		Workers:           *workers,
		JobRunners:        *jobs,
		CacheDir:          *cacheDir,
		DefaultReps:       *defaultReps,
		MaxReps:           *maxReps,
		JobHistory:        *jobHistory,
		GroupHistory:      *groupHistory,
		SearchHistory:     *searchHistory,
		CacheEntries:      *cacheEntries,
		CacheMaxEntries:   *cacheMaxEntries,
		CacheMaxBytes:     *cacheMaxBytes,
		MaxGroupVariants:  *maxGroupVariants,
		SLO:               *slo,
		MaxJobRuntime:     *maxJobRuntime,
		JournalDir:        *journalDir,
		HeartbeatInterval: *heartbeat,
		Chaos:             inj,
		Self:              *self,
		Peers:             peers,
		ProbeInterval:     *probeInterval,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	poolWidth := *workers
	if poolWidth <= 0 {
		poolWidth = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("scda-serve: listening on http://%s (jobs=%d workers=%d cache-dir=%q journal-dir=%q slo=%s %s)\n",
		ln.Addr(), *jobs, poolWidth, *cacheDir, *journalDir, *slo, inj)
	if rg := svc.Ring(); rg != nil {
		fmt.Printf("scda-serve: coordinator mode, peer %d of %d (self=%s peers=%s)\n",
			rg.SelfIndex(), rg.Len(), rg.Self(), strings.Join(rg.Peers(), ","))
	}

	// Full server timeouts: ReadHeaderTimeout against connections that
	// never send headers, ReadTimeout against bodies that trickle forever,
	// IdleTimeout to reap dead keep-alives, and WriteTimeout against
	// stalled writers. WriteTimeout no longer conflicts with the
	// long-lived events endpoint: the stream handler extends its
	// connection's write deadline per write (and per heartbeat) via
	// http.ResponseController, so only a genuinely stuck stream is cut.
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		fmt.Println("scda-serve: shutting down")
		// Cancel the jobs first: event streams and ?wait=true requests
		// only finish when their job terminates, so closing the service
		// before Shutdown lets those connections drain immediately
		// instead of stalling out the whole timeout.
		svc.Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "scda-serve: shutdown: %v\n", err)
		}
	}
}
