// Powersave demonstrates sections VII-C and VII-D: passive (cold) content
// is replicated onto dormant-candidate servers so they can be scaled down,
// active content avoids them, and power-aware selection (the R̂/P metric)
// steers load toward energy-efficient machines in a heterogeneous fleet.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/workload"
)

func main() {
	const x = 100e6
	c, err := core.NewSCDA(
		core.WithBandwidth(x, 3),
		core.WithReplication(),
		core.WithRscale(0.5*0.95*x), // servers above half the idle rate are dormant candidates
		core.WithPowerAware(),
		core.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("heterogeneous fleet (age and rack position vary draw):")
	type row struct {
		name       string
		idle, peak float64
	}
	var rows []row
	c.Power.Each(func(s *power.Server) {
		rows = append(rows, row{c.TT.Graph.Nodes[s.Node].Name, s.Profile.IdleWatts, s.Profile.PeakWatts})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows[:5] {
		fmt.Printf("  %-8s idle %5.1f W  peak %5.1f W\n", r.name, r.idle, r.peak)
	}
	fmt.Printf("  ... %d servers total\n\n", len(rows))

	// Mixed workload: hot collaborative documents (interactive), video
	// publishing (semi-interactive), and cold archives (passive).
	reqs := []workload.Request{
		{At: 0.0, Client: 0, Content: "shared-doc", Size: 200_000, Class: content.Interactive},
		{At: 0.1, Client: 1, Content: "talk.mp4", Size: 6 << 20, Class: content.SemiInteractive},
		{At: 0.2, Client: 2, Content: "backup-2013.tar", Size: 10 << 20, Class: content.Passive},
		{At: 0.3, Client: 3, Content: "archive-q1.tar", Size: 8 << 20, Class: content.Passive},
	}
	for _, r := range reqs {
		if err := c.SubmitWrite(r); err != nil {
			log.Fatal(err)
		}
	}
	c.Sim.RunUntil(60)

	fmt.Println("placement (primary → replica):")
	for _, id := range []content.ID{"shared-doc", "talk.mp4", "backup-2013.tar", "archive-q1.tar"} {
		meta, err := c.FES.Lookup(id)
		if err != nil {
			log.Fatal(err)
		}
		reps := meta.Blocks[0].Replicas
		names := make([]string, len(reps))
		for i, r := range reps {
			names[i] = c.TT.Graph.Nodes[r].Name
		}
		fmt.Printf("  %-16s (%-16s) %v\n", id, meta.Info.Effective(), names)
	}

	// Scale down: put every server that holds only passive replicas (and
	// carries no traffic) into the dormant state, then compare energy.
	c.Power.AccrueAll(c.Sim.Now())
	before := c.Power.TotalEnergy()
	dormant := 0
	c.Power.Each(func(s *power.Server) {
		bs := c.FES.BlockServer(s.Node)
		if bs != nil && bs.NumBlocks() == 0 {
			s.Sleep(c.Sim.Now())
			dormant++
		}
	})
	c.Sim.RunUntil(c.Sim.Now() + 3600) // an idle hour
	c.Power.AccrueAll(c.Sim.Now())
	after := c.Power.TotalEnergy()

	fmt.Printf("\nscaled down %d idle servers; fleet drew %.2f kWh over the idle hour\n",
		dormant, (after-before)/3.6e6)
	activeOnly := float64(len(rows)) * 150 * 3600 // all-active baseline at idle draw
	fmt.Printf("an all-active fleet at nominal idle draw would burn ≈ %.2f kWh\n", activeOnly/3.6e6)
}
