// Quickstart: build an SCDA cluster on the paper's fig. 6 topology, write
// one content from an external client, replicate it internally, read it
// back, and print the transfer times and the rates the RM/RA plane
// allocated along the way.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// An SCDA datacenter: 4 racks × 5 block servers behind a three-tier
	// switch tree, 40 external clients, X = 500 Mb/s, K = 3 — the paper's
	// video-trace setup — with section VIII-B internal replication on.
	c, err := core.NewSCDA(core.WithReplication(), core.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Client 0 uploads a 4 MB video (section VIII-A: FES hashes the
	// request to a name node, the RA tree picks the best block server,
	// the transfer runs at the explicitly allocated rate).
	err = c.SubmitWrite(workload.Request{
		Client:  0,
		Content: "intro.mp4",
		Size:    4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Sim.RunUntil(30)

	meta, err := c.FES.Lookup("intro.mp4")
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(meta.Blocks[0].Replicas))
	for i, r := range meta.Blocks[0].Replicas {
		names[i] = c.TT.Graph.Nodes[r].Name
	}
	fmt.Printf("stored %q: %d block(s), replicas on servers %v\n",
		meta.Info.ID, len(meta.Blocks), names)

	// Client 7 reads it back (section VIII-C: the NNS picks the replica
	// with the best up-link rate).
	if err := c.SubmitRead(workload.Request{Client: 7, Content: "intro.mp4", Op: workload.Read}); err != nil {
		log.Fatal(err)
	}
	c.Sim.RunUntil(60)

	for _, r := range c.Metrics.Records {
		kind := "client"
		if r.Internal {
			kind = "replication"
		}
		fmt.Printf("%-12s %-5s %8d bytes in %6.3f s (%.1f Mb/s)\n",
			kind, r.Op, r.Size, r.FCT, float64(r.Size)*8/r.FCT/1e6)
	}

	// Peek at the allocation plane: the best servers the root RA would
	// advertise right now for each selection metric (section VII).
	root := c.Hier.Root()
	fmt.Printf("\nroot RA best servers: write→%v (down %.0f Mb/s)  read→%v (up %.0f Mb/s)  interactive→%v (min %.0f Mb/s)\n",
		c.TT.Graph.Nodes[root.BestDown.Server].Name, root.BestDown.Rate/1e6,
		c.TT.Graph.Nodes[root.BestUp.Server].Name, root.BestUp.Rate/1e6,
		c.TT.Graph.Nodes[root.BestMin.Server].Name, root.BestMin.Rate/1e6)
}
