// Slamonitor walks through SCDA's SLA machinery (section IV): explicit
// minimum-rate reservations carve capacity out of a link, an
// over-subscription is detected by the RM/RA plane within a couple of
// control intervals, and the cluster mitigates by activating spare
// capacity ("reserve, backup or recovery links").
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ratealloc"
	"repro/internal/topology"
)

func main() {
	c, err := core.NewSCDA(core.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	c.MitigateViolations = true

	x := c.Cfg.Topology.X
	srv := c.TT.Servers[0]
	up := c.TT.UplinkOf[srv]
	fmt.Printf("target link: %s → its ToR, capacity %.0f Mb/s\n",
		c.TT.Graph.Nodes[srv].Name, x/1e6)

	c.OnViolation = func(v ratealloc.Violation) {
		fmt.Printf("t=%.2fs  SLA VIOLATION on link %d: demand sum %.0f Mb/s vs effective capacity %.0f Mb/s\n",
			v.Time, v.Link, v.S/1e6, v.CapEff/1e6)
	}

	// Phase 1: two tenants reserve 30% of the link each (section IV-C);
	// a third best-effort flow shares the remainder. All satisfiable.
	paths := []topology.LinkID{up}
	for i, m := range []float64{0.3 * x, 0.3 * x, 0} {
		if err := c.Ctrl.Register(&ratealloc.Flow{
			ID: ratealloc.FlowID(i + 1), Path: paths, MinRate: m,
		}); err != nil {
			log.Fatal(err)
		}
	}
	c.Sim.RunUntil(1)
	fmt.Println("\nafter convergence (reservations satisfiable):")
	for i := 1; i <= 3; i++ {
		fmt.Printf("  flow %d rate = %.1f Mb/s\n", i, c.Ctrl.FlowRate(ratealloc.FlowID(i))/1e6)
	}
	fmt.Printf("  violations so far: %d\n", c.Ctrl.Violations)

	// Phase 2: a fourth tenant reserves another 50% — the SLAs are now
	// unsatisfiable (30+30+50 > 95% of capacity). Detection fires within
	// two control intervals; mitigation activates spare capacity.
	fmt.Println("\nt=1.0s: fourth tenant reserves 50% — over-subscription")
	c.Sim.At(1.0, func() {
		if err := c.Ctrl.Register(&ratealloc.Flow{
			ID: 4, Path: paths, MinRate: 0.5 * x,
		}); err != nil {
			log.Fatal(err)
		}
	})
	c.Sim.RunUntil(2)

	fmt.Printf("\nafter mitigation: link capacity %.0f Mb/s (was %.0f)\n",
		c.Ctrl.Link(up).Capacity/1e6, x/1e6)
	for i := 1; i <= 4; i++ {
		fmt.Printf("  flow %d rate = %.1f Mb/s\n", i, c.Ctrl.FlowRate(ratealloc.FlowID(i))/1e6)
	}
}
