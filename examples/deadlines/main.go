// Deadlines demonstrates section IV-A's claim that SCDA's priority weights
// can implement earliest-deadline-first scheduling "adaptively and
// implicitly ... in a distributed manner": three transfers share one
// bottleneck; under plain max-min fairness the tight-deadline job misses,
// while EDF weights (℘ ∝ required rate) reorder the allocation so every
// job meets its deadline.
package main

import (
	"fmt"

	"repro/internal/ratealloc"
	"repro/internal/scheduler"
	"repro/internal/topology"
)

type job struct {
	id       ratealloc.FlowID
	name     string
	bits     float64
	deadline float64
	edf      *scheduler.EDF
	finished float64
}

type zeroReader struct{}

func (zeroReader) QueueBits(topology.LinkID) float64   { return 0 }
func (zeroReader) ArrivedBits(topology.LinkID) float64 { return 0 }

func run(useEDF bool) []*job {
	g := topology.NewGraph()
	a := g.AddNode(topology.Host, "a", 0)
	b := g.AddNode(topology.Host, "b", 0)
	l := g.AddDuplex(a, b, 100e6, 1e-3, 1)
	ctrl, err := ratealloc.NewController(g, zeroReader{}, ratealloc.DefaultParams())
	if err != nil {
		panic(err)
	}
	sched := scheduler.New(ctrl)
	path := []topology.LinkID{l}

	// 95 Mb/s effective capacity; fair sharing gives ~31.7 Mb/s each.
	// urgent needs 60 Mb over 1.5 s = 40 Mb/s — impossible under fair
	// sharing, easy under EDF.
	jobs := []*job{
		{id: 1, name: "urgent-backup", bits: 60e6, deadline: 1.5},
		{id: 2, name: "report-upload", bits: 80e6, deadline: 4.0},
		{id: 3, name: "batch-archive", bits: 120e6, deadline: 8.0},
	}
	for _, j := range jobs {
		if err := ctrl.Register(&ratealloc.Flow{ID: j.id, Path: path}); err != nil {
			panic(err)
		}
		if useEDF {
			j.edf = &scheduler.EDF{Deadline: j.deadline, BaseRate: 10e6}
			j.edf.SetRemainingBits(j.bits)
			sched.Attach(j.id, j.edf)
		}
		j.finished = -1
	}
	// fluid execution at the allocated rates
	tau := ctrl.Params.Tau
	for step := 0; step < 4000; step++ {
		now := float64(step) * tau
		ctrl.Tick(now)
		sched.Step(now)
		allDone := true
		for _, j := range jobs {
			if j.finished >= 0 {
				continue
			}
			allDone = false
			j.bits -= ctrl.FlowRate(j.id) * tau
			if j.edf != nil {
				j.edf.SetRemainingBits(j.bits)
			}
			if j.bits <= 0 {
				j.finished = now + tau
				ctrl.Unregister(j.id)
				sched.Detach(j.id)
			}
		}
		if allDone {
			break
		}
	}
	return jobs
}

func main() {
	for _, mode := range []struct {
		name string
		edf  bool
	}{{"max-min fair sharing (no policy)", false}, {"EDF via adaptive priorities", true}} {
		fmt.Printf("%s:\n", mode.name)
		met := 0
		for _, j := range run(mode.edf) {
			status := "MISSED"
			if j.finished >= 0 && j.finished <= j.deadline {
				status = "met"
				met++
			}
			fmt.Printf("  %-14s deadline %.1fs  finished %.2fs  [%s]\n",
				j.name, j.deadline, j.finished, status)
		}
		fmt.Printf("  deadlines met: %d/3\n\n", met)
	}
}
