// Videocdn reproduces the paper's motivating scenario (section X-A1) as a
// head-to-head: a YouTube-style workload — short HTTP control flows plus
// heavy-tailed video uploads capped near 30 MB — served once by SCDA and
// once by the RandTCP baseline on the identical fig. 6 fabric, then a
// side-by-side report of completion times (the data behind figs. 7-9).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		seed     = 7
		duration = 20.0 // arrival horizon, seconds
		x        = 100e6
	)
	spec := workload.DefaultVideoSpec()
	spec.ArrivalRate = 6 // scaled with the reduced bandwidth

	type outcome struct {
		name                   string
		mean, median, p90, p99 float64
		drops                  int64
		completed              int
	}
	var outcomes []outcome

	builders := []struct {
		name string
		mk   func(...core.Option) (*cluster.Cluster, error)
	}{
		{"SCDA", core.NewSCDA},
		{"RandTCP", core.NewRandTCP},
	}
	for _, b := range builders {
		c, err := b.mk(core.WithBandwidth(x, 3), core.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		reqs := spec.Generate(sim.NewRNG(seed), duration)
		m := c.RunWorkload(reqs, duration*3)
		cdf := m.FCTCDF()
		outcomes = append(outcomes, outcome{
			name:      b.name,
			mean:      m.MeanFCT(),
			median:    cdf.Quantile(0.5),
			p90:       cdf.Quantile(0.9),
			p99:       cdf.Quantile(0.99),
			drops:     m.Drops,
			completed: m.Completed,
		})
	}

	fmt.Printf("video workload: %d s of arrivals at %.0f videos/s, X=%.0f Mb/s K=3\n\n",
		int(duration), spec.ArrivalRate, x/1e6)
	fmt.Printf("%-8s %10s %10s %10s %10s %8s %10s\n",
		"system", "meanFCT", "median", "p90", "p99", "drops", "completed")
	for _, o := range outcomes {
		fmt.Printf("%-8s %9.3fs %9.3fs %9.3fs %9.3fs %8d %10d\n",
			o.name, o.mean, o.median, o.p90, o.p99, o.drops, o.completed)
	}
	s, r := outcomes[0], outcomes[1]
	fmt.Printf("\nSCDA mean FCT is %.0f%% lower than RandTCP (paper reports ≈50%%)\n",
		100*(r.mean-s.mean)/r.mean)
}
