package repro

// One benchmark per figure of the paper's evaluation (figs. 7-18). Each
// runs the full two-system comparison (SCDA vs RandTCP) at a reduced
// scale that preserves load ratios, and reports the headline summary
// numbers as custom benchmark metrics so `go test -bench` output doubles
// as the reproduction table. EXPERIMENTS.md records paper-vs-measured.
//
// Use cmd/scda-bench for paper-scale runs and CSV series output.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// benchScale keeps a full figure run around a second so the whole suite
// completes in minutes; ratios (load vs capacity) match the paper.
func benchScale() experiments.Scale {
	return experiments.Scale{Duration: 10, BWScale: 0.05, ArrivalScale: 0.05, Seed: 1}
}

func benchFigure(b *testing.B, fn func(experiments.Scale) (experiments.FigureResult, error)) {
	b.Helper()
	var last experiments.FigureResult
	for i := 0; i < b.N; i++ {
		experiments.ClearScenarioCache() // measure the full simulation
		sc := benchScale()
		sc.Seed = uint64(i + 1)
		f, err := fn(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for k, v := range last.Summary {
		b.ReportMetric(v, k)
	}
}

func BenchmarkFig07VideoThroughput(b *testing.B)      { benchFigure(b, experiments.Fig07) }
func BenchmarkFig08VideoFCTCDF(b *testing.B)          { benchFigure(b, experiments.Fig08) }
func BenchmarkFig09VideoAFCT(b *testing.B)            { benchFigure(b, experiments.Fig09) }
func BenchmarkFig10VideoNoCtlThroughput(b *testing.B) { benchFigure(b, experiments.Fig10) }
func BenchmarkFig11VideoNoCtlFCTCDF(b *testing.B)     { benchFigure(b, experiments.Fig11) }
func BenchmarkFig12VideoNoCtlAFCT(b *testing.B)       { benchFigure(b, experiments.Fig12) }
func BenchmarkFig13DCK1AFCT(b *testing.B)             { benchFigure(b, experiments.Fig13) }
func BenchmarkFig14DCK1FCTCDF(b *testing.B)           { benchFigure(b, experiments.Fig14) }
func BenchmarkFig15DCK3AFCT(b *testing.B)             { benchFigure(b, experiments.Fig15) }
func BenchmarkFig16DCK3FCTCDF(b *testing.B)           { benchFigure(b, experiments.Fig16) }
func BenchmarkFig17ParetoThroughput(b *testing.B)     { benchFigure(b, experiments.Fig17) }
func BenchmarkFig18ParetoFCTCDF(b *testing.B)         { benchFigure(b, experiments.Fig18) }

// benchAllFigures times the full 12-figure suite on the given pool. A
// serial pool (runner.Serial()) gives stable, machine-independent per-run
// cost; the parallel variant reports the wall-clock win of the runner's
// experiment-level fan-out. Same-seed results are identical either way.
func benchAllFigures(b *testing.B, pool *runner.Pool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		experiments.ClearScenarioCache() // measure the full simulation
		sc := benchScale()
		sc.Seed = uint64(i + 1)
		if _, err := experiments.RunFigures(nil, sc, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllFiguresSerial(b *testing.B)   { benchAllFigures(b, runner.Serial()) }
func BenchmarkAllFiguresParallel(b *testing.B) { benchAllFigures(b, nil) }

// BenchmarkAblations runs the A1-A11 design-claim validations serially so
// per-ablation cost stays comparable across runs; use scda-bench -ablations
// for the parallel path.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Seed = uint64(i + 1)
		rs, err := experiments.RunAblations(sc, runner.Serial())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if !r.Passed {
				b.Fatalf("%s failed: %+v", r.ID, r.Values)
			}
		}
	}
}
